"""The serializable scheduling result: schedule + costs + provenance.

A :class:`ScheduleResult` is the wire-format answer to one
:class:`~repro.api.ScheduleRequest`:

* the schedule itself (the :func:`~repro.core.serialization.schedule_to_dict`
  payload, self-contained with its instance);
* the exact cost and its work/comm/latency breakdown;
* the per-stage cost trace when the scheduler was a pipeline;
* provenance — the request fingerprint and scheduler name, so a result can
  be matched back to (and replayed from) the request that produced it;
* volatile run metadata — wall-clock timings and the cache-hit flag.

``to_dict``/``from_dict`` round-trip losslessly.  :meth:`canonical_dict`
strips the volatile metadata; it is the payload two runs of the same
deterministic-budget request must agree on bit-for-bit (what the
``solve_many`` parallel == serial guarantee and the content-addressed cache
compare).

dag_ref mode
------------
The schedule payload normally embeds its whole instance
(:func:`~repro.core.serialization.schedule_to_dict`).  When DAGs live in
shared storage — the content-addressed store's ``dags/`` directory, or an
in-memory table on the other side of a worker pipe — a result can instead
carry a **reference**: :meth:`with_dag_ref` swaps the embedded ``"dag"``
sub-dict for a ``"dag_ref"`` string, and a *dag resolver* (a callable
``ref -> dag wire dict``, e.g. :meth:`repro.store.ResultStore
.load_dag_dict`) passed to :meth:`from_dict` makes the round trip lossless:
:meth:`to_dict`, :meth:`canonical_dict` and :meth:`to_schedule` all resolve
the reference transparently, so a store-loaded result is bit-identical to a
freshly computed one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable

from ..core.exceptions import ReproError
from ..core.schedule import BspSchedule
from ..core.serialization import schedule_from_dict, schedule_to_dict
from ..schedulers.pipeline import StageCosts

__all__ = ["ScheduleResult"]


@dataclass
class ScheduleResult:
    """The outcome of one service solve (serializable, self-contained)."""

    scheduler: str
    fingerprint: str
    cost: float
    breakdown: dict[str, float]
    num_supersteps: int
    stages: StageCosts | None = None
    timings: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    _schedule_dict: dict | None = field(default=None, repr=False)
    _schedule: BspSchedule | None = field(default=None, repr=False, compare=False)
    _dag_resolver: Callable[[str], dict] | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_schedule(
        cls,
        schedule: BspSchedule,
        *,
        scheduler: str,
        fingerprint: str,
        stages: StageCosts | None = None,
        timings: dict[str, float] | None = None,
    ) -> "ScheduleResult":
        """Build a result from an in-memory schedule (serialisation is lazy)."""
        breakdown = schedule.cost_breakdown()
        return cls(
            scheduler=scheduler,
            fingerprint=fingerprint,
            cost=float(breakdown.total),
            breakdown={
                "total": float(breakdown.total),
                "work": float(breakdown.work),
                "comm": float(breakdown.comm),
                "latency": float(breakdown.latency),
            },
            num_supersteps=int(schedule.num_supersteps),
            stages=stages,
            timings=dict(timings or {}),
            _schedule=schedule,
        )

    # ------------------------------------------------------------------ #
    def schedule_dict(self) -> dict:
        """The schedule's wire payload (serialised once, then memoized)."""
        if self._schedule_dict is None:
            if self._schedule is None:
                raise ReproError("result carries neither a schedule nor its dict")
            self._schedule_dict = schedule_to_dict(self._schedule)
        return self._schedule_dict

    def to_schedule(self) -> BspSchedule:
        """The materialised (re-validated) :class:`BspSchedule`."""
        if self._schedule is None:
            self._schedule = schedule_from_dict(
                self.schedule_dict(), dag_resolver=self._dag_resolver
            )
        return self._schedule

    # ------------------------------------------------------------------ #
    # dag_ref mode
    # ------------------------------------------------------------------ #
    def with_dag_ref(
        self, ref: str, resolver: Callable[[str], dict] | None = None
    ) -> "ScheduleResult":
        """A copy whose schedule payload references its DAG instead of embedding it.

        The live schedule object is dropped (it would re-embed the DAG on
        pickling); ``resolver`` — when given — keeps the copy losslessly
        materialisable.
        """
        payload = {k: v for k, v in self.schedule_dict().items() if k != "dag"}
        payload["dag_ref"] = str(ref)
        return replace(
            self, _schedule_dict=payload, _schedule=None, _dag_resolver=resolver
        )

    def embedded_schedule_dict(self) -> dict:
        """The schedule payload with its DAG embedded (refs resolved)."""
        payload = self.schedule_dict()
        if "dag" in payload:
            return payload
        ref = payload.get("dag_ref")
        if ref is None:
            raise ReproError("schedule payload carries neither a DAG nor a dag_ref")
        if self._dag_resolver is None:
            raise ReproError(
                f"schedule payload references DAG {ref!r} but no resolver is "
                "attached; load the result through its store"
            )
        embedded = {k: v for k, v in payload.items() if k != "dag_ref"}
        embedded["dag"] = self._dag_resolver(str(ref))
        # memoize: the resolved payload *is* the schedule payload from now
        # on, so repeated to_dict()/canonical_dict() calls resolve once
        self._schedule_dict = embedded
        return embedded

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-compatible, self-contained wire form (inverse of :meth:`from_dict`).

        A ``dag_ref`` payload is resolved (embedded) here, so the emitted
        dict never depends on an external store being reachable later.
        """
        return {
            "schema": 1,
            "scheduler": self.scheduler,
            "fingerprint": self.fingerprint,
            "cost": float(self.cost),
            "breakdown": {k: float(v) for k, v in self.breakdown.items()},
            "num_supersteps": int(self.num_supersteps),
            "schedule": self.embedded_schedule_dict(),
            "stages": None if self.stages is None else self.stages.to_dict(),
            "timings": {k: float(v) for k, v in self.timings.items()},
            "cache_hit": bool(self.cache_hit),
        }

    def canonical_dict(self) -> dict:
        """The deterministic payload: :meth:`to_dict` minus volatile metadata."""
        data = self.to_dict()
        del data["timings"]
        del data["cache_hit"]
        return data

    @classmethod
    def from_dict(
        cls, data: dict, dag_resolver: Callable[[str], dict] | None = None
    ) -> "ScheduleResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``dag_resolver`` is required to *materialise* payloads stored in
        dag_ref mode (see the module docstring); costs, stage traces and
        provenance are available without it.
        """
        try:
            stages_data = data.get("stages")
            return cls(
                scheduler=str(data["scheduler"]),
                fingerprint=str(data["fingerprint"]),
                cost=float(data["cost"]),
                breakdown={
                    str(k): float(v) for k, v in data.get("breakdown", {}).items()
                },
                num_supersteps=int(data["num_supersteps"]),
                stages=(
                    None if stages_data is None else StageCosts.from_dict(stages_data)
                ),
                timings={
                    str(k): float(v) for k, v in data.get("timings", {}).items()
                },
                cache_hit=bool(data.get("cache_hit", False)),
                _schedule_dict=dict(data["schedule"]),
                _dag_resolver=dag_resolver,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed schedule result: {exc}") from exc

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "ScheduleResult":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))
