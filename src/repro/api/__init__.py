"""The unified, serializable scheduling-service API.

One stateless request/result contract over the whole algorithm portfolio:

* :class:`SchedulerSpec` — declarative scheduler recipe (registry name +
  validated params), buildable from/to plain dicts;
* :class:`~repro.schedulers.Budget` — the unified budget model (wall-clock
  allowance + deterministic ``max_steps`` / ``ilp_node_limit`` caps),
  re-exported here as part of the wire vocabulary;
* :class:`ScheduleRequest` — DAG (inline, in-memory or file reference) +
  machine + spec + budget + seed, content-addressed via
  :meth:`~ScheduleRequest.fingerprint`;
* :class:`ScheduleResult` — schedule, cost breakdown, per-stage trace,
  timings and provenance, JSON round-trippable;
* :class:`SchedulingService` — ``solve`` / ``solve_many(workers=N)`` with
  deterministic ordering and content-addressed result caching.

Quickstart
----------
>>> from repro.api import (
...     MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService,
... )
>>> from repro.dagdb import SparseMatrixPattern, build_spmv_dag
>>> dag = build_spmv_dag(SparseMatrixPattern.random(8, 0.4, seed=1)).dag
>>> service = SchedulingService()
>>> request = ScheduleRequest(
...     dag=dag,
...     machine=MachineSpec(num_procs=4, g=1, latency=5),
...     scheduler=SchedulerSpec("bsp_greedy"),
... )
>>> service.solve(request).cost > 0
True
"""

from ..core.machine import MachineSpec
from ..schedulers.base import Budget
from .request import ScheduleRequest, dag_fingerprint
from .result import ScheduleResult
from .spec import SchedulerSpec
from .service import SchedulingService

__all__ = [
    "Budget",
    "MachineSpec",
    "ScheduleRequest",
    "ScheduleResult",
    "SchedulerSpec",
    "SchedulingService",
    "dag_fingerprint",
]
