"""Crash-safe filesystem primitives shared by the store and the queue.

Every durable artifact in :mod:`repro.store` is one JSON file, and every
write follows the same two rules:

* **atomic publish** — content is written to a temporary sibling and
  ``os.replace``-d into place, so a reader (or a concurrent worker) never
  observes a half-written file and a crash mid-write leaves at most a
  stale ``*.tmp`` orphan, never a corrupt published file;
* **tolerant reads** — a file that is missing, truncated, or not valid
  JSON reads as *absent* (``None``) rather than raising, so one corrupt
  entry costs a recompute instead of wedging the store.

The queue's mutual-exclusion primitive is :func:`claim_rename`: on POSIX a
``rename`` within one filesystem is atomic, so when several dispatchers
race to claim the same pending entry exactly one rename succeeds and the
losers observe ``FileNotFoundError``.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "claim_rename",
    "read_json_tolerant",
]


def atomic_write_text(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` atomically (tmp sibling + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    # unique tmp name: concurrent writers of the same path must not trample
    # each other's in-flight temporaries
    tmp = path.parent / f".{path.name}.{uuid.uuid4().hex}.tmp"
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed before the rename: drop the orphan
            try:
                tmp.unlink()
            except OSError:
                pass


def atomic_write_json(path: Path, payload: Any, indent: int | None = None) -> None:
    """Publish a JSON payload at ``path`` atomically (sorted keys, stable bytes)."""
    atomic_write_text(path, json.dumps(payload, indent=indent, sort_keys=True) + "\n")


def read_json_tolerant(path: Path) -> Any | None:
    """Read a JSON file; missing/truncated/corrupt files read as ``None``."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        return json.loads(text)
    except ValueError:
        return None


def claim_rename(source: Path, target: Path) -> bool:
    """Atomically move ``source`` to ``target``; ``False`` if someone else won.

    The rename either transfers the whole file or fails — there is no
    partial state — so a set of racing claimants ends with exactly one
    owner of ``target``.
    """
    target.parent.mkdir(parents=True, exist_ok=True)
    try:
        os.rename(source, target)
    except FileNotFoundError:
        return False
    return True
