"""Worker lease heartbeat: keep a queue lease alive through a long solve.

A dispatcher stamps each claimed entry with a lease deadline
(:meth:`~repro.store.queue.WorkQueue.lease`); a solve that outlives that
deadline gets its entry requeued under a still-working worker and solved
twice — benign for correctness (results are content-addressed) but a pure
waste of compute at the scales this repo targets.  :class:`LeaseHeartbeat`
closes the gap: the worker renews its lease periodically while the solve
runs, so only a worker that actually *stops* renewing (i.e. died) expires.

Two operating modes share one bookkeeping core:

* **threaded** (``with LeaseHeartbeat(...)``): a daemon thread renews every
  ``interval`` seconds until the context exits — what the dispatch pool
  uses around a blocking ``service.solve``;
* **manual** (``start_thread=False`` + :meth:`maybe_beat` calls): the owner
  of an incremental loop beats from its own iteration; with an injected
  clock this is fully deterministic, which is how the tests drive it.

A renewal that fails (lease expired and was re-claimed, entry completed by
someone else) flips :attr:`lost` and stops further renewals — the worker
can check it to abandon duplicated work early.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .queue import WorkQueue

__all__ = ["LeaseHeartbeat"]


class LeaseHeartbeat:
    """Periodic lease renewal for one claimed queue entry.

    Parameters
    ----------
    queue:
        The :class:`~repro.store.queue.WorkQueue` holding the lease.
    fingerprint / owner:
        The claimed entry and the owner id it was leased under; renewals
        are refused for any other owner (see :meth:`WorkQueue.renew`).
    lease_seconds:
        Extension granted by each renewal (should match the dispatcher's
        lease duration).
    interval:
        Seconds between renewals; defaults to a third of ``lease_seconds``
        so two consecutive beats may be lost before the lease expires.
    clock:
        Injectable epoch-seconds time source for deterministic tests; the
        *threaded* mode additionally uses real time to pace its loop.
    """

    def __init__(
        self,
        queue: WorkQueue,
        fingerprint: str,
        owner: str,
        *,
        lease_seconds: float = 300.0,
        interval: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.queue = queue
        self.fingerprint = fingerprint
        self.owner = owner
        self.lease_seconds = float(lease_seconds)
        self.interval = (
            float(interval) if interval is not None else self.lease_seconds / 3.0
        )
        if self.interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {self.interval}")
        self._clock = clock if clock is not None else time.time
        self._last_beat = float(self._clock())
        self._renewals = 0
        self._lost = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    @property
    def renewals(self) -> int:
        """Successful renewals so far."""
        return self._renewals

    @property
    def lost(self) -> bool:
        """Whether a renewal was refused (lease no longer held by owner)."""
        return self._lost

    def beat(self) -> bool:
        """Renew the lease now; records and returns success."""
        if self._lost:
            return False
        ok = self.queue.renew(
            self.fingerprint, self.owner, lease_seconds=self.lease_seconds
        )
        self._last_beat = float(self._clock())
        if ok:
            self._renewals += 1
        else:
            self._lost = True
        return ok

    def maybe_beat(self) -> bool:
        """Renew only if ``interval`` has elapsed since the last beat.

        Cheap enough to call from every iteration of a solve loop; returns
        whether the lease is still considered held.
        """
        if self._lost:
            return False
        if float(self._clock()) - self._last_beat < self.interval:
            return True
        return self.beat()

    # ------------------------------------------------------------------ #
    # threaded mode
    # ------------------------------------------------------------------ #
    def start(self) -> "LeaseHeartbeat":
        """Start the background renewal thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run,
                name=f"lease-heartbeat-{self.fingerprint[:12]}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the renewal thread and wait for it to exit."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None

    def _run(self) -> None:
        # real-time pacing: wait() doubles as the stop signal, so shutdown
        # is immediate rather than delayed by up to one interval
        while not self._stop.wait(self.interval):
            if not self.beat():
                return

    def __enter__(self) -> "LeaseHeartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
