"""Persistence spine of the scheduling service: store, queue, dispatcher.

Everything durable lives in one directory tree (the *store root*), shared
freely between processes, machines with a common filesystem, and CI runs:

* :class:`ResultStore` — content-addressed results: one JSON file per
  solved request fingerprint under ``results/``, with DAG payloads
  deduplicated into ``dags/`` (results carry ``dag_ref``\\ s, so a grid
  over a handful of instances stores each DAG once).  Plugged in behind
  :class:`repro.api.SchedulingService`'s in-memory LRU via the ``store=``
  parameter, it makes every solve persistent and every re-run a cache hit.
* :class:`WorkQueue` — a crash-safe, file-backed queue of pending request
  fingerprints under ``queue/`` with lease / renew / expire semantics:
  atomic rename claims, abandoned leases retried, terminal failures
  recorded instead of wedging the batch.
* :class:`Dispatcher` — leases batches to a worker fleet (process or
  thread executors via :func:`repro.core.parallel.parallel_map`); workers
  persist results *before* queue entries are completed, so worker death
  anywhere loses nothing, and renew their leases mid-solve via
  :class:`LeaseHeartbeat`, so long solves by healthy workers are never
  expired and duplicated.  ``repro serve-worker`` wraps
  :meth:`Dispatcher.drain`; ``ResultStore.gc`` sweeps dangling results,
  orphaned DAG payloads and stale write temporaries.

Resume is a consequence rather than a feature: the experiment drivers in
:mod:`repro.analysis.experiments` build content-addressed request batches,
so re-running a grid against a warm store performs zero scheduler
invocations and reproduces the tables byte-for-byte.
"""

from .dispatcher import DispatchReport, Dispatcher
from .heartbeat import LeaseHeartbeat
from .queue import LeasedTask, WorkQueue
from .results import ResultStore, dag_dict_fingerprint
from .trials import ExperimentRecord, TrialLog, TrialRecord, dag_family

__all__ = [
    "DispatchReport",
    "Dispatcher",
    "ExperimentRecord",
    "LeaseHeartbeat",
    "LeasedTask",
    "ResultStore",
    "TrialLog",
    "TrialRecord",
    "WorkQueue",
    "dag_dict_fingerprint",
    "dag_family",
]
