"""Durable, crash-safe work queue of pending schedule requests.

The queue lives under the store root and is nothing but three directories
of single-entry JSON files, which makes every transition an atomic
filesystem operation::

    <root>/queue/
      pending/<fingerprint>.json   submitted, waiting for a worker
      leased/<fingerprint>.json    claimed by a worker (owner + deadline inside)
      failed/<fingerprint>.json    terminally failed (error recorded)

Lifecycle
---------
``submit`` publishes a pending entry (the full request wire dict plus an
attempt counter).  ``lease`` claims entries by *renaming* them from
``pending/`` into ``leased/`` — on POSIX a rename is atomic, so of several
racing workers exactly one wins each entry — then stamps the lease (owner
id, expiry deadline, incremented attempt counter) into the claimed file.
A healthy worker ``renew``-s its lease while working and ``complete``-s the
entry when the result is in the store; a worker that dies simply stops
renewing.  ``expire_leases`` (run by any dispatcher) returns expired
entries to ``pending/`` for retry, or — once ``max_attempts`` is exhausted
— records a terminal failure in ``failed/`` instead of retrying forever.
``fail`` records a genuine task error (a request whose solve raises)
terminally without wedging the rest of the batch.

Because results are content-addressed, the crash-recovery races are all
benign: re-running a requeued request that a dead worker had in fact
finished is detected by the dispatcher's store check (completed without
recompute), and two workers that do solve the same fingerprint write the
identical file.

The clock is injectable (``clock=`` — epoch seconds) so tests can simulate
worker death and lease expiry deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..core.exceptions import ReproError
from .fsio import atomic_write_json, claim_rename, read_json_tolerant

__all__ = ["LeasedTask", "WorkQueue"]


@dataclass(frozen=True)
class LeasedTask:
    """One claimed queue entry: the request wire dict plus lease bookkeeping."""

    fingerprint: str
    request: dict
    attempts: int
    owner: str
    expires_at: float


class WorkQueue:
    """File-backed queue of request fingerprints with lease semantics.

    Parameters
    ----------
    root:
        The store root; the queue lives under ``<root>/queue/``.
    clock:
        Epoch-seconds time source (default :func:`time.time`); injectable
        for deterministic lease-expiry tests.
    """

    def __init__(self, root: str | Path, clock: Callable[[], float] | None = None) -> None:
        self.root = Path(root)
        base = self.root / "queue"
        self.pending_dir = base / "pending"
        self.leased_dir = base / "leased"
        self.failed_dir = base / "failed"
        self._clock = clock if clock is not None else time.time

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, fingerprint: str, request_dict: dict) -> bool:
        """Enqueue one request; ``False`` if already pending/leased/failed.

        ``request_dict`` is the :meth:`ScheduleRequest.to_dict` wire form —
        self-contained or carrying a ``dag_ref`` into the store's ``dags/``
        directory (see :meth:`ResultStore.put_dag`).
        """
        if (
            (self.pending_dir / f"{fingerprint}.json").exists()
            or (self.leased_dir / f"{fingerprint}.json").exists()
            or (self.failed_dir / f"{fingerprint}.json").exists()
        ):
            return False
        entry = {
            "fingerprint": fingerprint,
            "request": request_dict,
            "attempts": 0,
            "enqueued_at": float(self._clock()),
        }
        atomic_write_json(self.pending_dir / f"{fingerprint}.json", entry)
        return True

    # ------------------------------------------------------------------ #
    # leasing
    # ------------------------------------------------------------------ #
    def lease(
        self, owner: str, limit: int | None = None, lease_seconds: float = 300.0
    ) -> list[LeasedTask]:
        """Claim up to ``limit`` pending entries for ``owner``.

        Claims are atomic renames, so concurrent dispatchers partition the
        pending set without coordination; an entry contested and lost is
        simply skipped.  Each claimed entry gets its attempt counter
        incremented and a lease stamp ``{owner, expires_at}`` written back.
        """
        if not self.pending_dir.is_dir():
            return []
        tasks: list[LeasedTask] = []
        for path in sorted(self.pending_dir.glob("*.json")):
            if limit is not None and len(tasks) >= limit:
                break
            fingerprint = path.stem
            target = self.leased_dir / path.name
            if target.exists():
                # stale duplicate: an expiry requeue that crashed between
                # publishing the pending copy and unlinking the leased one.
                # The leased copy is authoritative; drop the duplicate.
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            if not claim_rename(path, target):
                continue  # another worker won this entry
            entry = read_json_tolerant(target)
            if not isinstance(entry, dict) or "request" not in entry:
                # unreadable entry: record it terminally rather than letting
                # it bounce between pending and leased forever
                self._record_failure(
                    fingerprint,
                    entry if isinstance(entry, dict) else {"fingerprint": fingerprint},
                    "unreadable queue entry",
                )
                try:
                    target.unlink()
                except OSError:
                    pass
                continue
            entry["attempts"] = int(entry.get("attempts", 0)) + 1
            expires_at = float(self._clock()) + float(lease_seconds)
            entry["lease"] = {"owner": owner, "expires_at": expires_at}
            atomic_write_json(target, entry)
            tasks.append(
                LeasedTask(
                    fingerprint=fingerprint,
                    request=entry["request"],
                    attempts=entry["attempts"],
                    owner=owner,
                    expires_at=expires_at,
                )
            )
        return tasks

    def renew(self, fingerprint: str, owner: str, lease_seconds: float = 300.0) -> bool:
        """Extend a held lease; ``False`` if it is no longer held by ``owner``."""
        path = self.leased_dir / f"{fingerprint}.json"
        entry = read_json_tolerant(path)
        if not isinstance(entry, dict):
            return False
        lease = entry.get("lease") or {}
        if lease.get("owner") != owner:
            return False
        entry["lease"] = {
            "owner": owner,
            "expires_at": float(self._clock()) + float(lease_seconds),
        }
        atomic_write_json(path, entry)
        return True

    def expire_leases(
        self, max_attempts: int = 3, lease_seconds: float = 300.0
    ) -> tuple[list[str], list[str]]:
        """Requeue expired leases; terminally fail ones out of attempts.

        Returns ``(requeued, failed)`` fingerprint lists.  An entry whose
        lease stamp is missing (the claimant died between the claim rename
        and the stamp write) is treated as expiring ``lease_seconds`` after
        the file's mtime.
        """
        if not self.leased_dir.is_dir():
            return [], []
        now = float(self._clock())
        requeued: list[str] = []
        failed: list[str] = []
        for path in sorted(self.leased_dir.glob("*.json")):
            entry = read_json_tolerant(path)
            if not isinstance(entry, dict):
                continue  # mid-write by a live worker; next sweep decides
            lease = entry.get("lease")
            if isinstance(lease, dict) and "expires_at" in lease:
                expires_at = float(lease["expires_at"])
            else:
                try:
                    expires_at = path.stat().st_mtime + float(lease_seconds)
                except OSError:
                    continue
            if expires_at > now:
                continue
            fingerprint = path.stem
            if int(entry.get("attempts", 0)) >= max_attempts:
                self._record_failure(
                    fingerprint,
                    entry,
                    f"lease expired after {entry.get('attempts', 0)} attempt(s); "
                    "worker presumed dead",
                )
                failed.append(fingerprint)
            else:
                entry.pop("lease", None)
                # publish the pending copy before dropping the lease: a crash
                # in between leaves a benign duplicate that lease() cleans up
                atomic_write_json(self.pending_dir / path.name, entry)
                requeued.append(fingerprint)
            try:
                path.unlink()
            except OSError:
                pass
        return requeued, failed

    # ------------------------------------------------------------------ #
    # terminal transitions
    # ------------------------------------------------------------------ #
    def complete(self, fingerprint: str) -> None:
        """Drop a finished entry (its result now lives in the store)."""
        for directory in (self.leased_dir, self.pending_dir):
            try:
                (directory / f"{fingerprint}.json").unlink()
            except OSError:
                pass

    def fail(self, fingerprint: str, error: str) -> None:
        """Record a terminal failure for a leased entry and drop the lease."""
        path = self.leased_dir / f"{fingerprint}.json"
        entry = read_json_tolerant(path)
        if not isinstance(entry, dict):
            entry = {"fingerprint": fingerprint}
        self._record_failure(fingerprint, entry, error)
        self.complete(fingerprint)

    def _record_failure(self, fingerprint: str, entry: dict, error: str) -> None:
        record = dict(entry)
        record.pop("lease", None)
        record["error"] = error
        record["failed_at"] = float(self._clock())
        atomic_write_json(self.failed_dir / f"{fingerprint}.json", record)

    def retry_failed(self) -> list[str]:
        """Move every terminal failure back to pending (attempts reset)."""
        if not self.failed_dir.is_dir():
            return []
        retried: list[str] = []
        for path in sorted(self.failed_dir.glob("*.json")):
            entry = read_json_tolerant(path)
            if not isinstance(entry, dict) or "request" not in entry:
                continue
            entry.pop("error", None)
            entry.pop("failed_at", None)
            entry["attempts"] = 0
            atomic_write_json(self.pending_dir / path.name, entry)
            try:
                path.unlink()
            except OSError:
                pass
            retried.append(path.stem)
        return retried

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def _fingerprints(self, directory: Path) -> list[str]:
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))

    def pending(self) -> list[str]:
        """Pending fingerprints (sorted)."""
        return self._fingerprints(self.pending_dir)

    def leased(self) -> list[str]:
        """Currently leased fingerprints (sorted)."""
        return self._fingerprints(self.leased_dir)

    def failures(self) -> dict[str, str]:
        """Terminal failures: ``{fingerprint: error message}``."""
        out: dict[str, str] = {}
        for fingerprint in self._fingerprints(self.failed_dir):
            entry = read_json_tolerant(self.failed_dir / f"{fingerprint}.json")
            out[fingerprint] = (
                str(entry.get("error", "unknown")) if isinstance(entry, dict) else "unknown"
            )
        return out

    def stats(self) -> dict[str, int]:
        """Entry counts per state."""
        return {
            "pending": len(self.pending()),
            "leased": len(self.leased()),
            "failed": len(self._fingerprints(self.failed_dir)),
        }

    def request_dict(self, fingerprint: str) -> dict:
        """The wire request of any queue entry (pending, leased or failed)."""
        for directory in (self.pending_dir, self.leased_dir, self.failed_dir):
            entry = read_json_tolerant(directory / f"{fingerprint}.json")
            if isinstance(entry, dict) and "request" in entry:
                return entry["request"]
        raise ReproError(f"fingerprint {fingerprint!r} is not in the queue")
