"""Experiment metadata records: the trial/experiment table layer of the store.

The raw :class:`~repro.store.results.ResultStore` is a content-addressed
map ``request fingerprint -> ScheduleResult`` — perfect for resume, useless
for review: a fingerprint says nothing about *what* was solved.  This
module adds the fuzzbench-style metadata tables on top:

* :class:`TrialRecord` — one row per **actual scheduler invocation**:
  the request fingerprint plus everything a report needs to aggregate
  without opening result payloads — scheduler name, instance family and
  size, machine point, budget, seed, cost breakdown and wall-clock
  timings.  Emitted by :class:`~repro.api.SchedulingService` whenever a
  store-backed solve misses every cache tier (so dispatcher worker fleets
  and ``solve_many`` grids populate the table as a side effect of
  computing).
* :class:`ExperimentRecord` — one row per named batch: an experiment name
  plus the fingerprints of the trials it comprises, so a report can group
  "the Table-1 grid" separately from ad-hoc CLI solves.
* :class:`TrialLog` — the storage layer: two **append-only JSONL** files
  next to ``results/`` (``trials.jsonl`` and ``experiments.jsonl``).
  Appends are single ``O_APPEND`` writes of one newline-terminated line,
  so concurrent workers interleave whole records rather than bytes;
  readers skip unparseable lines (a torn write costs one record, never
  the table).  :meth:`TrialLog.compact` rewrites the files atomically —
  used by :meth:`ResultStore.gc(prune_trials=True)
  <repro.store.results.ResultStore.gc>` to drop records whose results
  were collected.

Records are deliberately denormalised (the family and node count are
copied out of the DAG): the report must render from the JSONL alone,
without touching — or even having — the DAG payloads.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # circular: api imports the store package lazily
    from ..api.request import ScheduleRequest
    from ..api.result import ScheduleResult

__all__ = ["ExperimentRecord", "TrialLog", "TrialRecord", "dag_family"]


def dag_family(dag_name: str) -> str:
    """The instance family of a DAG name (its leading underscore segment).

    Generator names are of the form ``spmv_n100_d30_s7`` / ``cholesky_...``
    — the segment before the first underscore is the family every
    aggregation groups by.  Unnamed DAGs fall into ``"unnamed"``.
    """
    head = str(dag_name).split("_", 1)[0]
    return head or "unnamed"


@dataclass
class TrialRecord:
    """One scheduler invocation, described well enough to aggregate.

    ``timings`` and ``created_at`` are volatile (wall-clock) metadata:
    they make two otherwise-identical trials differ, so deterministic
    consumers (the byte-stable HTML report) must not render them raw.
    Everything else is a pure function of the request and its result.
    """

    fingerprint: str
    scheduler: str
    family: str
    dag_name: str
    dag_fingerprint: str
    num_nodes: int
    num_edges: int
    machine: dict
    budget: dict | None
    seed: int
    cost: float
    breakdown: dict[str, float]
    num_supersteps: int
    timings: dict[str, float] = field(default_factory=dict)
    created_at: float = 0.0

    @classmethod
    def from_solve(
        cls,
        request: "ScheduleRequest",
        result: "ScheduleResult",
        clock: Callable[[], float] | None = None,
    ) -> "TrialRecord":
        """Describe one completed solve (request context + result numbers).

        The request's DAG is already resolved and fingerprinted by the
        solve itself, so this only reads memoized state — no file or
        payload is touched again.
        """
        from ..api.request import dag_fingerprint

        dag = request.resolve_dag()
        return cls(
            fingerprint=request.fingerprint(),
            scheduler=request.scheduler.name,
            family=dag_family(dag.name),
            dag_name=str(dag.name),
            dag_fingerprint=dag_fingerprint(dag),
            num_nodes=int(dag.num_nodes),
            num_edges=int(dag.num_edges),
            machine=request._machine_dict(),
            budget=None if request.budget is None else request.budget.to_dict(),
            seed=int(request.seed),
            cost=float(result.cost),
            breakdown={k: float(v) for k, v in result.breakdown.items()},
            num_supersteps=int(result.num_supersteps),
            timings={k: float(v) for k, v in result.timings.items()},
            created_at=float((clock or time.time)()),
        )

    # ------------------------------------------------------------------ #
    def group_key(self) -> tuple:
        """The comparison-group identity: same problem, different scheduler.

        Two trials with equal group keys solved the *same* instance on the
        same machine under the same budget and seed — exactly the blocks
        the rank tables compare schedulers within.
        """
        return (
            self.dag_fingerprint,
            json.dumps(self.machine, sort_keys=True),
            json.dumps(self.budget, sort_keys=True),
            self.seed,
        )

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "kind": "trial",
            "fingerprint": self.fingerprint,
            "scheduler": self.scheduler,
            "family": self.family,
            "dag_name": self.dag_name,
            "dag_fingerprint": self.dag_fingerprint,
            "num_nodes": int(self.num_nodes),
            "num_edges": int(self.num_edges),
            "machine": self.machine,
            "budget": self.budget,
            "seed": int(self.seed),
            "cost": float(self.cost),
            "breakdown": {k: float(v) for k, v in self.breakdown.items()},
            "num_supersteps": int(self.num_supersteps),
            "timings": {k: float(v) for k, v in self.timings.items()},
            "created_at": float(self.created_at),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialRecord":
        return cls(
            fingerprint=str(data["fingerprint"]),
            scheduler=str(data["scheduler"]),
            family=str(data["family"]),
            dag_name=str(data.get("dag_name", "")),
            dag_fingerprint=str(data.get("dag_fingerprint", "")),
            num_nodes=int(data.get("num_nodes", 0)),
            num_edges=int(data.get("num_edges", 0)),
            machine=dict(data.get("machine", {})),
            budget=data.get("budget"),
            seed=int(data.get("seed", 0)),
            cost=float(data["cost"]),
            breakdown={
                str(k): float(v) for k, v in data.get("breakdown", {}).items()
            },
            num_supersteps=int(data.get("num_supersteps", 0)),
            timings={str(k): float(v) for k, v in data.get("timings", {}).items()},
            created_at=float(data.get("created_at", 0.0)),
        )


@dataclass
class ExperimentRecord:
    """One named batch of trials (e.g. an experiment grid run)."""

    name: str
    fingerprints: list[str]
    metadata: dict = field(default_factory=dict)
    created_at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "kind": "experiment",
            "name": self.name,
            "fingerprints": list(self.fingerprints),
            "metadata": dict(self.metadata),
            "created_at": float(self.created_at),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRecord":
        return cls(
            name=str(data["name"]),
            fingerprints=[str(f) for f in data.get("fingerprints", [])],
            metadata=dict(data.get("metadata", {})),
            created_at=float(data.get("created_at", 0.0)),
        )


class TrialLog:
    """Append-only JSONL tables under a store root (crash- and race-safe).

    One record per line.  Appends open with ``O_APPEND`` and write the
    whole line in a single call, so concurrent appenders (worker fleets)
    interleave records, not bytes; a torn line from a dying writer is
    skipped on read.  The files are *data*, shared with the store's other
    artifacts: :meth:`compact` is the only operation that rewrites them,
    and it publishes atomically (tmp sibling + rename).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.trials_path = self.root / "trials.jsonl"
        self.experiments_path = self.root / "experiments.jsonl"

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def _append_line(self, path: Path, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def append_trial(self, record: TrialRecord) -> None:
        """Append one trial record (one atomic line write)."""
        self._append_line(self.trials_path, record.to_dict())

    def append_experiment(self, record: ExperimentRecord) -> None:
        """Append one experiment record (one atomic line write)."""
        self._append_line(self.experiments_path, record.to_dict())

    def record_experiment(
        self,
        name: str,
        fingerprints: Iterable[str],
        metadata: dict | None = None,
        clock: Callable[[], float] | None = None,
    ) -> ExperimentRecord:
        """Append (and return) an experiment record for a named batch."""
        record = ExperimentRecord(
            name=str(name),
            fingerprints=[str(f) for f in fingerprints],
            metadata=dict(metadata or {}),
            created_at=float((clock or time.time)()),
        )
        self.append_experiment(record)
        return record

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def _read_lines(self, path: Path) -> list[dict]:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return []
        rows: list[dict] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # torn write from a dying appender: skip the line
            if isinstance(payload, dict):
                rows.append(payload)
        return rows

    def trials(self) -> list[TrialRecord]:
        """Every readable trial record, in append (chronological) order."""
        records: list[TrialRecord] = []
        for payload in self._read_lines(self.trials_path):
            try:
                records.append(TrialRecord.from_dict(payload))
            except (KeyError, TypeError, ValueError):
                continue
        return records

    def experiments(self) -> list[ExperimentRecord]:
        """Every readable experiment record, in append order."""
        records: list[ExperimentRecord] = []
        for payload in self._read_lines(self.experiments_path):
            try:
                records.append(ExperimentRecord.from_dict(payload))
            except (KeyError, TypeError, ValueError):
                continue
        return records

    def __len__(self) -> int:
        return len(self.trials())

    # ------------------------------------------------------------------ #
    # compaction (the gc hook)
    # ------------------------------------------------------------------ #
    def compact(self, keep: Callable[[str], bool]) -> dict[str, int]:
        """Rewrite the tables keeping only records whose result survives.

        ``keep(fingerprint)`` decides trial survival; experiment records
        survive with their fingerprint lists filtered (an experiment whose
        every trial was dropped is dropped too).  Duplicate trial rows for
        one fingerprint (a worker recomputing after a crash) are collapsed
        to the most recent.  Both files are republished atomically.
        Returns ``{"dropped_trials": n, "dropped_experiments": m}``.
        """
        from .fsio import atomic_write_text

        latest: dict[str, TrialRecord] = {}
        total = 0
        for record in self.trials():
            total += 1
            latest[record.fingerprint] = record
        kept = [record for record in latest.values() if keep(record.fingerprint)]
        kept.sort(key=lambda record: (record.created_at, record.fingerprint))
        dropped_trials = total - len(kept)
        if self.trials_path.exists() or kept:
            atomic_write_text(
                self.trials_path,
                "".join(
                    json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":"))
                    + "\n"
                    for r in kept
                ),
            )
        surviving = {record.fingerprint for record in kept}
        experiments = self.experiments()
        kept_experiments: list[ExperimentRecord] = []
        for record in experiments:
            fingerprints = [f for f in record.fingerprints if f in surviving]
            if not fingerprints:
                continue
            record.fingerprints = fingerprints
            kept_experiments.append(record)
        dropped_experiments = len(experiments) - len(kept_experiments)
        if self.experiments_path.exists() or kept_experiments:
            atomic_write_text(
                self.experiments_path,
                "".join(
                    json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":"))
                    + "\n"
                    for r in kept_experiments
                ),
            )
        return {
            "dropped_trials": dropped_trials,
            "dropped_experiments": dropped_experiments,
        }
