"""Content-addressed on-disk result store.

The store is a plain directory tree shared by every process that points at
it (CLI runs, experiment harnesses, worker fleets, CI jobs)::

    <root>/
      results/<request-fingerprint>.json   one ScheduleResult per solved request
      dags/<dag-fingerprint>.json          deduplicated DAG payloads (dag_to_dict)
      queue/...                            the durable work queue (see queue.py)

* **Content-addressed**: a result file is named by the fingerprint of the
  :class:`~repro.api.ScheduleRequest` that produced it (DAG content +
  machine + spec + budget + seed), so any process that can rebuild the
  request can look its answer up — no coordination, no index.
* **Small payloads**: the schedule's instance is factored out on write —
  the DAG payload is stored once under ``dags/`` and the result file holds
  a ``dag_ref`` (the :ref:`dag_ref mode <ScheduleResult>` of the wire
  format).  A grid of thousands of requests over a handful of DAGs stores
  each DAG once.
* **Crash-safe**: writes are atomic (tmp + rename — see
  :mod:`repro.store.fsio`), concurrent writers of the same fingerprint are
  idempotent (content-addressing makes the race benign), and corrupt or
  truncated files read as *missing* and are overwritten by the next
  recompute instead of wedging the store.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from ..api.result import ScheduleResult
from ..core.dag import ComputationalDAG
from ..core.exceptions import ReproError
from ..core.serialization import dag_to_dict
from .fsio import atomic_write_json, read_json_tolerant

if TYPE_CHECKING:
    from .trials import TrialLog

__all__ = ["ResultStore", "dag_dict_fingerprint"]


def dag_dict_fingerprint(dag_dict: dict) -> str:
    """Stable content hash of a DAG wire dict (the ``dags/`` file name).

    Hashes the canonical JSON rendering of the :func:`dag_to_dict` payload,
    so the same DAG content produces the same reference whether it arrives
    as a live object or as an already-serialised dict.
    """
    canonical = json.dumps(dag_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(b"repro-dagdict-v1" + canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory-backed, content-addressed map ``request fingerprint -> result``.

    Parameters
    ----------
    root:
        The store root directory (created on first write).  Several
        processes may share one root concurrently; all operations are
        atomic at the single-entry level.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.dags_dir = self.root / "dags"
        self._trials: "TrialLog | None" = None

    @property
    def trials(self) -> "TrialLog":
        """The trial/experiment metadata tables living next to ``results/``.

        See :mod:`repro.store.trials`: append-only JSONL records describing
        every actual scheduler invocation (and every named experiment
        batch) against this store — the layer the report subsystem
        aggregates instead of opening raw result payloads.
        """
        if self._trials is None:
            from .trials import TrialLog

            self._trials = TrialLog(self.root)
        return self._trials

    # ------------------------------------------------------------------ #
    # result entries
    # ------------------------------------------------------------------ #
    def result_path(self, fingerprint: str) -> Path:
        """The on-disk location of one result entry."""
        return self.results_dir / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> ScheduleResult | None:
        """The stored result, or ``None`` (missing *or* unreadable/corrupt).

        The returned result resolves its ``dag_ref`` lazily against this
        store's ``dags/`` directory; costs, stage traces and metadata are
        available without touching the DAG payload at all.
        """
        payload = read_json_tolerant(self.result_path(fingerprint))
        if not isinstance(payload, dict):
            return None
        try:
            return ScheduleResult.from_dict(payload, dag_resolver=self.load_dag_dict)
        except ReproError:
            # structurally broken entry (e.g. a partial write predating the
            # atomic-rename discipline): treat as missing, let the caller
            # recompute and overwrite
            return None

    def contains(self, fingerprint: str) -> bool:
        """Whether a *readable* result is stored for ``fingerprint``."""
        return self.get(fingerprint) is not None

    def put(self, fingerprint: str, result: ScheduleResult) -> bool:
        """Store a result under ``fingerprint``; ``False`` if already present.

        The DAG payload is factored out into ``dags/`` (written once per
        distinct DAG) and the result file keeps only a ``dag_ref``.  An
        existing *readable* entry is kept untouched — content-addressing
        makes re-putting the same fingerprint idempotent — while a corrupt
        one is overwritten.
        """
        if self.contains(fingerprint):
            return False
        data = result.to_dict()
        schedule = dict(data["schedule"])
        dag_dict = schedule.pop("dag")
        ref = dag_dict_fingerprint(dag_dict)
        dag_path = self.dags_dir / f"{ref}.json"
        if not dag_path.exists():
            atomic_write_json(dag_path, dag_dict)
        schedule["dag_ref"] = ref
        data["schedule"] = schedule
        # volatile per-run flags are not part of the stored answer
        data["cache_hit"] = False
        atomic_write_json(self.result_path(fingerprint), data)
        return True

    def fingerprints(self) -> list[str]:
        """Every stored fingerprint (sorted; readability not verified)."""
        if not self.results_dir.is_dir():
            return []
        return sorted(path.stem for path in self.results_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.fingerprints())

    # ------------------------------------------------------------------ #
    # DAG payloads
    # ------------------------------------------------------------------ #
    def dag_path(self, ref: str) -> Path:
        """The on-disk location of one DAG payload."""
        return self.dags_dir / f"{ref}.json"

    def put_dag(self, dag: ComputationalDAG | dict) -> Path:
        """Store a DAG payload (deduplicated) and return its file path.

        Used by the queue submission path: a request can then carry a
        ``dag_ref`` to this file instead of embedding the DAG, so a grid of
        requests over one instance stores and ships it once.
        """
        dag_dict = dag if isinstance(dag, dict) else dag_to_dict(dag)
        ref = dag_dict_fingerprint(dag_dict)
        path = self.dag_path(ref)
        if not path.exists():
            atomic_write_json(path, dag_dict)
        return path

    def load_dag_dict(self, ref: str) -> dict:
        """Resolve a ``dag_ref`` to its stored wire dict (raises if absent)."""
        payload = read_json_tolerant(self.dag_path(ref))
        if not isinstance(payload, dict):
            raise ReproError(
                f"dag_ref {ref!r} does not resolve to a readable DAG payload "
                f"under {self.dags_dir}"
            )
        return payload

    # ------------------------------------------------------------------ #
    # garbage collection
    # ------------------------------------------------------------------ #
    def gc(
        self,
        *,
        tmp_grace_seconds: float = 3600.0,
        prune_trials: bool = False,
        clock: Callable[[], float] | None = None,
    ) -> dict[str, Any]:
        """Collect store garbage; returns what was removed, by category.

        Three kinds of debris accumulate in a long-lived store and nothing
        in the normal write path ever removes them:

        * **dangling results** — result entries whose ``dag_ref`` no longer
          resolves to a readable ``dags/`` payload (e.g. a payload deleted
          by hand, or a partial copy of a store).  Such an entry can never
          reproduce its schedule, so it is dropped and the next solve
          recomputes it;
        * **orphaned DAG payloads** — ``dags/`` entries referenced by no
          result *and no queue entry* (queued requests may carry a
          ``dag_ref`` path into ``dags/``, so a payload whose results were
          never written — or were gc'd — but whose request is still
          pending must survive);
        * **stale temporaries** — ``.{name}.{uuid}.tmp`` siblings orphaned
          by writers that died between creating the temporary and the
          atomic rename (see :mod:`repro.store.fsio`).  Only temporaries
          older than ``tmp_grace_seconds`` are touched, so in-flight writes
          of live processes are never raced.

        The trial/experiment metadata tables (``trials.jsonl`` /
        ``experiments.jsonl``, see :mod:`repro.store.trials`) are **never
        touched by default** — they are the history of what was computed,
        which outlives the payloads.  With ``prune_trials=True`` they are
        compacted instead: trial records whose result entry no longer
        exists after this sweep are dropped (along with experiment records
        left referencing nothing), so the tables never point at results
        the store cannot answer.  Records of *surviving* results are
        always kept — gc never orphans a record from its result in either
        direction.

        The clock is injectable (epoch seconds, default :func:`time.time`)
        for deterministic grace-period tests.  Results with inline DAGs,
        corrupt-but-present entries (``put`` overwrites those) and queue
        state are never removed.
        """
        now = float((clock if clock is not None else time.time)())
        removed_results: list[str] = []
        referenced: set[str] = set()
        for fingerprint in self.fingerprints():
            payload = read_json_tolerant(self.result_path(fingerprint))
            schedule = payload.get("schedule") if isinstance(payload, dict) else None
            ref = schedule.get("dag_ref") if isinstance(schedule, dict) else None
            if ref is None:
                continue  # inline DAG or unreadable entry: nothing to resolve
            if self.dag_path(str(ref)).is_file():
                referenced.add(str(ref))
                continue
            try:
                self.result_path(fingerprint).unlink()
            except OSError:
                continue
            removed_results.append(fingerprint)
        # queued requests keep their payloads alive: collect dag_refs out of
        # every queue state (pending, leased and failed entries alike —
        # failures may be retried)
        queue_base = self.root / "queue"
        for state in ("pending", "leased", "failed"):
            directory = queue_base / state
            if not directory.is_dir():
                continue
            for path in directory.glob("*.json"):
                entry = read_json_tolerant(path)
                request = entry.get("request") if isinstance(entry, dict) else None
                ref = request.get("dag_ref") if isinstance(request, dict) else None
                if ref is None:
                    continue
                referenced.add(str(ref))
                name = Path(str(ref)).name
                if name.endswith(".json"):
                    referenced.add(name[: -len(".json")])
        removed_dags: list[str] = []
        if self.dags_dir.is_dir():
            for path in sorted(self.dags_dir.glob("*.json")):
                if path.stem in referenced:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                removed_dags.append(path.stem)
        pruned = {"dropped_trials": 0, "dropped_experiments": 0}
        if prune_trials:
            # only now, after the dangling-result sweep, does "stored"
            # mean "answerable": compact the metadata tables against the
            # surviving result set so no record points at a missing result
            pruned = self.trials.compact(
                lambda fingerprint: self.result_path(fingerprint).is_file()
            )
        removed_tmp: list[str] = []
        if self.root.is_dir():
            for path in sorted(self.root.rglob(".*.tmp")):
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age < float(tmp_grace_seconds):
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                removed_tmp.append(str(path.relative_to(self.root)))
        return {
            "removed_results": removed_results,
            "removed_dags": removed_dags,
            "removed_tmp": removed_tmp,
            "dropped_trials": pruned["dropped_trials"],
            "dropped_experiments": pruned["dropped_experiments"],
        }

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Entry counts (results, deduplicated DAG payloads, trial records)."""
        num_dags = (
            len(list(self.dags_dir.glob("*.json"))) if self.dags_dir.is_dir() else 0
        )
        return {"results": len(self), "dags": num_dags, "trials": len(self.trials)}
