"""Dispatcher: leases queued requests to a worker fleet, persists results.

The dispatcher closes the loop between the durable queue and the result
store.  One :meth:`Dispatcher.run_once` cycle:

1. **expire** — return leases abandoned by dead workers to the pending
   set (or record a terminal failure once the attempt budget is spent);
2. **lease** — claim a batch of pending entries for this dispatcher;
3. **skip** — entries whose fingerprint is already in the store (e.g. a
   worker that died *after* persisting but *before* completing) are
   completed immediately, without recomputation;
4. **solve** — the remainder fan out over :func:`repro.core.parallel
   .parallel_map` (process or thread executors); each pool worker runs a
   store-backed :class:`~repro.api.SchedulingService`, so results are
   persisted *in the worker*, before the queue entry is touched, and a
   :class:`~repro.store.heartbeat.LeaseHeartbeat` renews the entry's
   lease while the solve runs, so long solves by healthy workers are not
   expired and duplicated;
5. **settle** — solved entries are completed, genuine task errors are
   recorded terminally (the rest of the batch is unaffected).

Because step 4 persists before step 5 completes, a crash anywhere in the
cycle loses no results: the entry is either still pending, or leased (and
will expire back to pending), or its result is already content-addressed
in the store — in which case the next cycle's step 3 completes it without
recompute.  Duplicated work is likewise benign: identical fingerprints
write identical files.

:meth:`Dispatcher.drain` loops ``run_once`` until the queue is empty —
the ``repro serve-worker`` CLI is a thin wrapper around it.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from ..core.parallel import TaskError, parallel_map
from .queue import WorkQueue
from .results import ResultStore

__all__ = ["DispatchReport", "Dispatcher"]


#: per-process store-backed services, keyed by store root — one pool worker
#: serves many tasks and must not rebuild the service (or its store handle)
#: per task
_WORKER_SERVICES: dict = {}


def _worker_service(store_root: str):
    from ..api.service import SchedulingService

    service = _WORKER_SERVICES.get(store_root)
    if service is None:
        service = SchedulingService(cache_size=8, store=store_root)
        _WORKER_SERVICES[store_root] = service
    return service


def _dispatch_task(payload: dict, task: tuple[str, dict]) -> tuple[str, str | None]:
    """Module-level pool handler: solve one queued request into the store.

    ``payload`` carries the store root plus the dispatcher's lease identity
    (owner, lease duration); ``task`` is ``(queue fingerprint, request wire
    dict)``.  Returns ``(fingerprint, error)`` — ``error`` is ``None`` on
    success.  Exceptions are captured here (not propagated) so one poisoned
    request cannot cancel the rest of the batch.

    While the solve runs, a :class:`~repro.store.heartbeat.LeaseHeartbeat`
    renews the entry's lease in the background, so a solve longer than one
    lease period is not requeued under a perfectly healthy worker.
    """
    from ..api.request import ScheduleRequest
    from .heartbeat import LeaseHeartbeat

    store_root = str(payload["root"])
    queue_fingerprint, request_dict = task
    service = _worker_service(store_root)
    try:
        request = ScheduleRequest.from_dict(request_dict)
        fingerprint = request.fingerprint()
    except Exception as exc:  # malformed request: terminal, nothing to retry
        return (queue_fingerprint, f"{type(exc).__name__}: {exc}")
    heartbeat = LeaseHeartbeat(
        WorkQueue(store_root),
        queue_fingerprint,
        str(payload["owner"]),
        lease_seconds=float(payload["lease_seconds"]),
    )
    try:
        with heartbeat:
            service.solve(request)  # store-backed: persists before returning
        return (fingerprint, None)
    except Exception as exc:
        return (fingerprint, f"{type(exc).__name__}: {exc}")


@dataclass
class DispatchReport:
    """What a dispatch run did (cumulative over ``run_once`` cycles)."""

    completed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    requeued: list[str] = field(default_factory=list)
    batches: int = 0

    def merge(self, other: "DispatchReport") -> None:
        self.completed.extend(other.completed)
        self.skipped.extend(other.skipped)
        self.failed.update(other.failed)
        self.requeued.extend(other.requeued)
        self.batches += other.batches

    @property
    def progressed(self) -> bool:
        return bool(self.completed or self.skipped or self.failed or self.requeued)


class Dispatcher:
    """Leases queue entries to a worker fleet and settles their outcomes.

    Parameters
    ----------
    root:
        Store root (results, DAG payloads and the queue all live under it).
    workers / executor:
        Fan-out width and pool flavour, passed to
        :func:`repro.core.parallel.parallel_map` (``workers=None`` reads
        ``REPRO_WORKERS``; ``executor`` is ``"process"`` or ``"thread"``).
    lease_seconds:
        Lease duration per claimed batch; a worker dead longer than this
        has its entries requeued by the next cycle (any dispatcher's).
    max_attempts:
        Lease attempts before an entry fails terminally instead of
        bouncing forever.
    batch_size:
        Maximum entries claimed per cycle (``None``: 4 x the worker count).
    clock:
        Injectable time source forwarded to the queue (tests simulate
        worker death by advancing it).
    """

    def __init__(
        self,
        root: str | Path,
        workers: int | None = None,
        executor: str = "process",
        lease_seconds: float = 300.0,
        max_attempts: int = 3,
        batch_size: int | None = None,
        owner: str | None = None,
        clock=None,
    ) -> None:
        self.store = ResultStore(root)
        self.queue = WorkQueue(root, clock=clock)
        self.workers = workers
        self.executor = executor
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.batch_size = batch_size
        self.owner = owner or (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )

    # ------------------------------------------------------------------ #
    def run_once(self, limit: int | None = None) -> DispatchReport:
        """One expire / lease / solve / settle cycle (see module docstring)."""
        report = DispatchReport(batches=1)
        requeued, expired = self.queue.expire_leases(
            max_attempts=self.max_attempts, lease_seconds=self.lease_seconds
        )
        report.requeued.extend(requeued)
        for fingerprint in expired:
            report.failed[fingerprint] = self.queue.failures().get(
                fingerprint, "lease expired"
            )
        if limit is None:
            limit = self.batch_size
        tasks = self.queue.lease(
            self.owner, limit=limit, lease_seconds=self.lease_seconds
        )
        ready = []
        for task in tasks:
            if self.store.contains(task.fingerprint):
                # a dead worker got as far as persisting: finish its entry
                self.queue.complete(task.fingerprint)
                report.skipped.append(task.fingerprint)
            else:
                ready.append(task)
        if not ready:
            return report
        outcomes = parallel_map(
            _dispatch_task,
            {
                "root": str(self.store.root),
                "owner": self.owner,
                "lease_seconds": self.lease_seconds,
            },
            [(task.fingerprint, task.request) for task in ready],
            self.workers,
            executor=self.executor,
            return_errors=True,
        )
        for task, outcome in zip(ready, outcomes):
            if isinstance(outcome, TaskError):
                error: str | None = str(outcome)
            else:
                _, error = outcome
            if error is None and not self.store.contains(task.fingerprint):
                error = "worker reported success but the result is not in the store"
            if error is None:
                self.queue.complete(task.fingerprint)
                report.completed.append(task.fingerprint)
            else:
                self.queue.fail(task.fingerprint, error)
                report.failed[task.fingerprint] = error
        return report

    def drain(
        self, poll_seconds: float = 1.0, max_batches: int | None = None
    ) -> DispatchReport:
        """Run cycles until the queue is empty (or ``max_batches`` is hit).

        Entries leased by *other* (live) workers are waited out with a
        ``poll_seconds`` sleep between idle cycles; entries of dead workers
        come back via lease expiry and are picked up here.
        """
        total = DispatchReport()
        while max_batches is None or total.batches < max_batches:
            report = self.run_once()
            total.merge(report)
            stats = self.queue.stats()
            if stats["pending"] == 0 and stats["leased"] == 0:
                break
            if not report.progressed:
                time.sleep(poll_seconds)
        return total
