"""JSON (de)serialisation of problem instances and schedules.

The experiment harness and the CLI persist three kinds of objects:

* :class:`~repro.core.dag.ComputationalDAG` — nodes with weights plus edges,
* :class:`~repro.core.machine.BspMachine` — ``P``, ``g``, ``ℓ`` and the NUMA
  matrix,
* :class:`~repro.core.schedule.BspSchedule` — the assignment ``(π, τ)`` and,
  when explicit, the communication schedule ``Γ``.

All functions produce plain JSON-compatible dictionaries (``to_dict``) or
strings/files (``dumps``/``save``), and their inverses re-validate the data
so that hand-edited files cannot silently produce invalid schedules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .comm import CommStep
from .dag import ComputationalDAG
from .exceptions import ReproError
from .machine import BspMachine
from .schedule import BspSchedule

__all__ = [
    "dag_to_dict",
    "dag_from_dict",
    "machine_to_dict",
    "machine_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]


def dag_to_dict(dag: ComputationalDAG) -> dict[str, Any]:
    """JSON-compatible representation of a DAG."""
    return {
        "name": dag.name,
        "num_nodes": dag.num_nodes,
        "work": [float(w) for w in dag.work_weights],
        "comm": [float(c) for c in dag.comm_weights],
        "edges": [[edge.source, edge.target] for edge in dag.edges()],
    }


def dag_from_dict(data: dict[str, Any]) -> ComputationalDAG:
    """Rebuild a DAG from :func:`dag_to_dict` output."""
    try:
        dag = ComputationalDAG(
            int(data["num_nodes"]),
            work_weights=data["work"],
            comm_weights=data["comm"],
            name=str(data.get("name", "dag")),
        )
        for source, target in data["edges"]:
            dag.add_edge(int(source), int(target))
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed DAG dictionary: {exc}") from exc
    if not dag.is_acyclic():
        raise ReproError("serialised graph is not acyclic")
    return dag


def machine_to_dict(machine: BspMachine) -> dict[str, Any]:
    """JSON-compatible representation of a machine."""
    return {
        "num_procs": int(machine.num_procs),
        "g": float(machine.g),
        "latency": float(machine.latency),
        "numa": machine.numa.tolist(),
    }


def machine_from_dict(data: dict[str, Any]) -> BspMachine:
    """Rebuild a machine from :func:`machine_to_dict` output."""
    try:
        return BspMachine(
            num_procs=int(data["num_procs"]),
            g=float(data["g"]),
            latency=float(data["latency"]),
            numa=np.asarray(data["numa"], dtype=np.float64),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed machine dictionary: {exc}") from exc


def schedule_to_dict(schedule: BspSchedule, include_dag: bool = True) -> dict[str, Any]:
    """JSON-compatible representation of a schedule (with its instance).

    ``include_dag=False`` omits the instance payload — for callers that
    store or ship the DAG separately (dag_ref mode); building the DAG dict
    dominates serialisation cost on large instances.
    """
    payload: dict[str, Any] = {}
    if include_dag:
        payload["dag"] = dag_to_dict(schedule.dag)
    payload |= {
        "machine": machine_to_dict(schedule.machine),
        "procs": [int(p) for p in schedule.procs],
        "supersteps": [int(s) for s in schedule.supersteps],
        "cost": schedule.cost(),
    }
    if not schedule.uses_lazy_comm:
        payload["comm_schedule"] = [
            [step.node, step.source, step.target, step.superstep]
            for step in sorted(schedule.comm_schedule)
        ]
    return payload


def schedule_from_dict(data: dict[str, Any], dag_resolver=None) -> BspSchedule:
    """Rebuild (and re-validate) a schedule from :func:`schedule_to_dict` output.

    Payloads in *dag_ref mode* (a ``"dag_ref"`` string instead of an
    embedded ``"dag"`` sub-dict — what the content-addressed store writes)
    need ``dag_resolver``, a callable mapping the reference to the DAG wire
    dict (e.g. :meth:`repro.store.ResultStore.load_dag_dict`) or directly
    to a :class:`ComputationalDAG` (e.g. a file loader — this skips the
    dict round-trip for formats with a faster native path such as the
    memory-mapped ``.hdagb`` binary).
    """
    if "dag" in data:
        dag_dict = data["dag"]
    elif "dag_ref" in data:
        if dag_resolver is None:
            raise ReproError(
                f"schedule payload references DAG {data['dag_ref']!r}; pass a "
                "dag_resolver (or load via the result store) to materialise it"
            )
        dag_dict = dag_resolver(str(data["dag_ref"]))
    else:
        raise ReproError("schedule payload carries neither 'dag' nor 'dag_ref'")
    dag = dag_dict if isinstance(dag_dict, ComputationalDAG) else dag_from_dict(dag_dict)
    machine = machine_from_dict(data["machine"])
    comm = None
    if "comm_schedule" in data:
        comm = [
            CommStep(int(v), int(p1), int(p2), int(s))
            for v, p1, p2, s in data["comm_schedule"]
        ]
    return BspSchedule(dag, machine, data["procs"], data["supersteps"], comm)


def save_schedule(schedule: BspSchedule, path: str | Path) -> None:
    """Write a schedule (plus its instance) to a JSON file."""
    Path(path).write_text(
        json.dumps(schedule_to_dict(schedule), indent=2), encoding="utf-8"
    )


def load_schedule(path: str | Path, store: str | Path | None = None) -> BspSchedule:
    """Load a schedule previously written by :func:`save_schedule`.

    Reads every format ever emitted: the plain :func:`save_schedule`
    payload, the service API's :class:`repro.api.ScheduleResult` wire
    format (what ``repro schedule --output`` emits — the schedule payload
    nested under a ``"schedule"`` key), and dag_ref-mode payloads (what the
    content-addressed store writes).  For dag_ref payloads the reference is
    resolved against ``store`` (a store root directory) when given, else
    against the nearest ancestor of ``path`` that contains a ``dags/``
    directory — which is exactly where a file read out of a store sits; a
    reference that is not a store entry but *is* a DAG file path (hyperDAG
    text, ``.hdagb`` binary, stored ``.json`` — what a file-reference
    :meth:`ScheduleRequest.to_dict` emits) is loaded from that file, tried
    absolute and then relative to the schedule file's directory.
    """
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if "schedule" in data and "procs" not in data:
        data = data["schedule"]
    dag_resolver = None
    if "dag" not in data and "dag_ref" in data:
        root = _discover_store_root(path, store)

        def dag_resolver(ref: str):
            if root is not None:
                from ..store.results import ResultStore

                result_store = ResultStore(root)
                if result_store.dag_path(ref).is_file():
                    return result_store.load_dag_dict(ref)
            from ..io.hdagb import load_dag

            for candidate in (Path(ref), path.parent / ref):
                if candidate.is_file():
                    return load_dag(candidate)
            raise ReproError(
                f"dag_ref {ref!r} is neither a store entry"
                f"{f' under {root}' if root is not None else ''} nor a "
                "readable DAG file"
            )

    return schedule_from_dict(data, dag_resolver=dag_resolver)


def _discover_store_root(path: Path, store: str | Path | None) -> Path | None:
    """The store root to resolve ``dag_ref``\\ s against (explicit or inferred)."""
    if store is not None:
        return Path(store)
    for ancestor in path.resolve().parents:
        if (ancestor / "dags").is_dir():
            return ancestor
    return None
