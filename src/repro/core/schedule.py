"""The :class:`BspSchedule` container tying together assignment, ``Γ`` and costs.

A BSP schedule consists of the processor assignment ``π``, the superstep
assignment ``τ`` and a communication schedule ``Γ`` (paper Section 3.2).
Most algorithms in the framework construct only ``(π, τ)`` and rely on the
implicit *lazy* communication schedule; :class:`BspSchedule` therefore
accepts ``comm_schedule=None`` and derives the lazy ``Γ`` on demand.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .comm import CommStep, CommWindow, lazy_comm_schedule, required_transfers
from .cost import CostBreakdown, evaluate_cost
from .dag import ComputationalDAG
from .exceptions import ScheduleError
from .machine import BspMachine
from .validation import schedule_violations, validate_schedule

__all__ = ["BspSchedule"]


class BspSchedule:
    """A (possibly lazy-communication) BSP schedule of a DAG on a machine.

    Parameters
    ----------
    dag, machine:
        The problem instance.
    procs:
        Sequence of processor indices ``π(v)`` for every node.
    supersteps:
        Sequence of superstep indices ``τ(v)`` for every node.
    comm_schedule:
        Explicit communication schedule ``Γ``; ``None`` means "use the lazy
        communication schedule derived from ``(π, τ)``".
    validate:
        When true (default), the schedule is validated on construction.
    """

    def __init__(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        procs: Sequence[int] | np.ndarray,
        supersteps: Sequence[int] | np.ndarray,
        comm_schedule: Iterable[CommStep] | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self.dag = dag
        self.machine = machine
        self._procs = np.asarray(procs, dtype=np.int64).copy()
        self._supersteps = np.asarray(supersteps, dtype=np.int64).copy()
        if self._procs.shape != (dag.num_nodes,) or self._supersteps.shape != (
            dag.num_nodes,
        ):
            raise ScheduleError(
                f"assignment arrays must have length {dag.num_nodes}; got "
                f"{self._procs.shape} and {self._supersteps.shape}"
            )
        self._explicit_comm = (
            None if comm_schedule is None else frozenset(comm_schedule)
        )
        self._lazy_cache: frozenset[CommStep] | None = None
        self._cost_cache: CostBreakdown | None = None
        if validate:
            self.validate()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def trivial(cls, dag: ComputationalDAG, machine: BspMachine) -> "BspSchedule":
        """The trivial schedule: every node on processor 0 in superstep 0.

        This is the "assign everything to one processor" baseline the paper
        compares against in the communication-dominated regime (§7.3).
        """
        n = dag.num_nodes
        return cls(dag, machine, np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64))

    @classmethod
    def from_mappings(
        cls,
        dag: ComputationalDAG,
        machine: BspMachine,
        proc_of: Mapping[int, int],
        superstep_of: Mapping[int, int],
        comm_schedule: Iterable[CommStep] | None = None,
    ) -> "BspSchedule":
        """Build a schedule from node->processor and node->superstep mappings."""
        procs = np.array([proc_of[v] for v in dag.nodes()], dtype=np.int64)
        steps = np.array([superstep_of[v] for v in dag.nodes()], dtype=np.int64)
        return cls(dag, machine, procs, steps, comm_schedule)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def procs(self) -> np.ndarray:
        """Processor assignment ``π`` (read-only view)."""
        view = self._procs.view()
        view.flags.writeable = False
        return view

    @property
    def supersteps(self) -> np.ndarray:
        """Superstep assignment ``τ`` (read-only view)."""
        view = self._supersteps.view()
        view.flags.writeable = False
        return view

    def proc_of(self, v: int) -> int:
        """Processor assigned to node ``v``."""
        return int(self._procs[v])

    def superstep_of(self, v: int) -> int:
        """Superstep assigned to node ``v``."""
        return int(self._supersteps[v])

    @property
    def num_supersteps(self) -> int:
        """Number of supersteps spanned by the schedule (including ``Γ``)."""
        max_s = int(self._supersteps.max(initial=-1))
        if self._explicit_comm:
            max_s = max(max_s, max(s.superstep for s in self._explicit_comm))
        return max_s + 1

    @property
    def uses_lazy_comm(self) -> bool:
        """Whether the communication schedule is the implicit lazy one."""
        return self._explicit_comm is None

    @property
    def comm_schedule(self) -> frozenset[CommStep]:
        """The communication schedule ``Γ`` (lazy one derived if not explicit)."""
        if self._explicit_comm is not None:
            return self._explicit_comm
        if self._lazy_cache is None:
            self._lazy_cache = lazy_comm_schedule(
                self.dag, self._procs, self._supersteps
            )
        return self._lazy_cache

    def comm_windows(self) -> list[CommWindow]:
        """Feasible windows of every required transfer for ``(π, τ)``."""
        return required_transfers(self.dag, self._procs, self._supersteps)

    def nodes_in_superstep(self, s: int, p: int | None = None) -> list[int]:
        """Nodes assigned to superstep ``s`` (optionally restricted to processor ``p``)."""
        mask = self._supersteps == s
        if p is not None:
            mask &= self._procs == p
        return [int(v) for v in np.nonzero(mask)[0]]

    # ------------------------------------------------------------------ #
    # validity and cost
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`ScheduleError` if the schedule is invalid."""
        validate_schedule(
            self.dag, self.machine, self._procs, self._supersteps, self.comm_schedule
        )

    def violations(self) -> list[str]:
        """Human-readable list of validity violations (empty if valid)."""
        return schedule_violations(
            self.dag, self.machine, self._procs, self._supersteps, self.comm_schedule
        )

    def is_valid(self) -> bool:
        """Whether the schedule satisfies all BSP validity conditions."""
        return not self.violations()

    def cost_breakdown(self) -> CostBreakdown:
        """Full cost decomposition (cached)."""
        if self._cost_cache is None:
            self._cost_cache = evaluate_cost(
                self.dag,
                self.machine,
                self._procs,
                self._supersteps,
                self.comm_schedule,
                num_supersteps=self.num_supersteps,
            )
        return self._cost_cache

    def cost(self) -> float:
        """Total schedule cost under the BSP(+NUMA) model."""
        return self.cost_breakdown().total

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def copy(self) -> "BspSchedule":
        """An independent copy of this schedule."""
        return BspSchedule(
            self.dag,
            self.machine,
            self._procs,
            self._supersteps,
            self._explicit_comm,
            validate=False,
        )

    def with_comm_schedule(self, comm_schedule: Iterable[CommStep]) -> "BspSchedule":
        """Copy of this schedule with an explicit communication schedule."""
        return BspSchedule(
            self.dag, self.machine, self._procs, self._supersteps, comm_schedule
        )

    def with_lazy_comm(self) -> "BspSchedule":
        """Copy of this schedule that uses the lazy communication schedule."""
        return BspSchedule(
            self.dag, self.machine, self._procs, self._supersteps, None, validate=False
        )

    def with_assignment(
        self,
        procs: Sequence[int] | np.ndarray,
        supersteps: Sequence[int] | np.ndarray,
        *,
        validate: bool = True,
    ) -> "BspSchedule":
        """New lazy-communication schedule with a different ``(π, τ)``."""
        return BspSchedule(
            self.dag, self.machine, procs, supersteps, None, validate=validate
        )

    def compacted(self) -> "BspSchedule":
        """Remove empty supersteps (renumber ``τ`` and ``Γ`` contiguously).

        Supersteps that contain neither computation nor communication are
        dropped; this never increases the cost (it removes latency terms).
        Only available for lazy-communication schedules or explicit ones, in
        both cases the communication schedule is remapped consistently.
        """
        used = sorted(
            set(int(s) for s in self._supersteps)
            | {s.superstep for s in self.comm_schedule}
        )
        remap = {old: new for new, old in enumerate(used)}
        new_steps = np.array([remap[int(s)] for s in self._supersteps], dtype=np.int64)
        if self._explicit_comm is None:
            return BspSchedule(self.dag, self.machine, self._procs, new_steps, None)
        new_comm = frozenset(
            CommStep(c.node, c.source, c.target, remap[c.superstep])
            for c in self._explicit_comm
        )
        return BspSchedule(self.dag, self.machine, self._procs, new_steps, new_comm)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Multi-line human readable description of the schedule."""
        breakdown = self.cost_breakdown()
        lines = [
            f"BspSchedule on {self.machine.describe()}: "
            f"{self.dag.num_nodes} nodes, {self.num_supersteps} supersteps",
            f"  total cost = {breakdown.total:.2f} "
            f"(work {breakdown.work:.2f}, comm {breakdown.comm:.2f}, "
            f"latency {breakdown.latency:.2f})",
        ]
        for s in range(self.num_supersteps):
            per_proc = [
                len(self.nodes_in_superstep(s, p)) for p in range(self.machine.num_procs)
            ]
            lines.append(
                f"  superstep {s}: nodes/proc {per_proc}, "
                f"work {breakdown.work_per_superstep[s]:.1f}, "
                f"h-relation {breakdown.comm_per_superstep[s]:.1f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"BspSchedule(n={self.dag.num_nodes}, P={self.machine.num_procs}, "
            f"supersteps={self.num_supersteps}, cost={self.cost():.2f})"
        )
