"""Weighted computational DAG container.

A :class:`ComputationalDAG` stores the structure of a computation as used
throughout the paper (Section 3.1): nodes are operations, directed edges are
data dependencies, and each node ``v`` carries an integer *work weight*
``w(v)`` (time to execute ``v``) and a *communication weight* ``c(v)`` (cost
of sending the output of ``v`` to another processor).

The container is append-only with respect to nodes (nodes are integers
``0..n-1``); edges may be added freely as long as the graph stays acyclic.
Derived quantities used by the schedulers (topological order, levels,
bottom levels, transitive reachability queries, ...) are computed lazily and
cached; every mutation invalidates the caches.

Implementation notes
--------------------
Adjacency is stored as Python lists of lists (successor and predecessor
lists) because the schedulers traverse neighbourhoods node-by-node; the
weight vectors are numpy arrays so that aggregate quantities (total work,
load sums) vectorise.  This follows the HPC-Python guidance of keeping the
hot aggregate math in numpy while leaving irregular graph traversals in
plain Python structures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .exceptions import CycleError, DagError

__all__ = ["ComputationalDAG", "EdgeView"]


@dataclass(frozen=True)
class EdgeView:
    """A single directed edge ``(source, target)`` of a DAG."""

    source: int
    target: int


class ComputationalDAG:
    """A directed acyclic graph with per-node work and communication weights.

    Parameters
    ----------
    num_nodes:
        Number of nodes to create initially.  Nodes are labelled
        ``0 .. num_nodes - 1``.
    work_weights:
        Optional sequence of work weights ``w(v)``; defaults to all ones.
    comm_weights:
        Optional sequence of communication weights ``c(v)``; defaults to all
        ones.
    name:
        Optional human readable name (used by the DAG database and reports).
    """

    def __init__(
        self,
        num_nodes: int = 0,
        work_weights: Sequence[float] | None = None,
        comm_weights: Sequence[float] | None = None,
        name: str = "dag",
    ) -> None:
        if num_nodes < 0:
            raise DagError(f"num_nodes must be non-negative, got {num_nodes}")
        self.name = name
        self._succ: list[list[int]] = [[] for _ in range(num_nodes)]
        self._pred: list[list[int]] = [[] for _ in range(num_nodes)]
        self._work = self._init_weights(work_weights, num_nodes, "work_weights")
        self._comm = self._init_weights(comm_weights, num_nodes, "comm_weights")
        self._num_edges = 0
        self._invalidate()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _init_weights(
        weights: Sequence[float] | None, num_nodes: int, label: str
    ) -> np.ndarray:
        if weights is None:
            return np.ones(num_nodes, dtype=np.float64)
        arr = np.asarray(weights, dtype=np.float64)
        if arr.shape != (num_nodes,):
            raise DagError(
                f"{label} must have length {num_nodes}, got shape {arr.shape}"
            )
        if np.any(arr < 0):
            raise DagError(f"{label} must be non-negative")
        return arr.copy()

    def add_node(self, work: float = 1.0, comm: float = 1.0) -> int:
        """Append a node and return its index."""
        if work < 0 or comm < 0:
            raise DagError("node weights must be non-negative")
        self._succ.append([])
        self._pred.append([])
        self._work = np.append(self._work, float(work))
        self._comm = np.append(self._comm, float(comm))
        self._invalidate()
        return len(self._succ) - 1

    def add_nodes(self, count: int, work: float = 1.0, comm: float = 1.0) -> list[int]:
        """Append ``count`` nodes with identical weights; return their indices."""
        return [self.add_node(work, comm) for _ in range(count)]

    def add_edge(self, source: int, target: int, *, check_cycle: bool = False) -> None:
        """Add the directed edge ``source -> target``.

        Duplicate edges are rejected.  When ``check_cycle`` is true, the edge
        is only inserted if it does not create a directed cycle (an O(E)
        reachability check); otherwise acyclicity is verified lazily the
        first time a topological order is requested.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            raise CycleError(f"self-loop on node {source} is not allowed")
        if target in self._succ[source]:
            raise DagError(f"duplicate edge ({source}, {target})")
        if check_cycle and self.has_path(target, source):
            raise CycleError(
                f"edge ({source}, {target}) would create a directed cycle"
            )
        self._succ[source].append(target)
        self._pred[target].append(source)
        self._num_edges += 1
        self._invalidate()

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add many edges at once."""
        for u, v in edges:
            self.add_edge(u, v)

    def _check_node(self, v: int) -> None:
        if not 0 <= v < len(self._succ):
            raise DagError(f"node {v} does not exist (n={len(self._succ)})")

    def _invalidate(self) -> None:
        self._topo_cache: list[int] | None = None
        self._level_cache: np.ndarray | None = None
        self._bottom_level_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    @property
    def work_weights(self) -> np.ndarray:
        """Work weight vector ``w`` (read-only view)."""
        view = self._work.view()
        view.flags.writeable = False
        return view

    @property
    def comm_weights(self) -> np.ndarray:
        """Communication weight vector ``c`` (read-only view)."""
        view = self._comm.view()
        view.flags.writeable = False
        return view

    def work(self, v: int) -> float:
        """Work weight ``w(v)``."""
        return float(self._work[v])

    def comm(self, v: int) -> float:
        """Communication weight ``c(v)``."""
        return float(self._comm[v])

    def set_work(self, v: int, value: float) -> None:
        """Set ``w(v)``."""
        if value < 0:
            raise DagError("work weight must be non-negative")
        self._check_node(v)
        self._work[v] = value

    def set_comm(self, v: int, value: float) -> None:
        """Set ``c(v)``."""
        if value < 0:
            raise DagError("communication weight must be non-negative")
        self._check_node(v)
        self._comm[v] = value

    @property
    def total_work(self) -> float:
        """Sum of all work weights."""
        return float(self._work.sum())

    @property
    def total_comm(self) -> float:
        """Sum of all communication weights."""
        return float(self._comm.sum())

    def successors(self, v: int) -> list[int]:
        """Direct successors (out-neighbours) of ``v``."""
        self._check_node(v)
        return list(self._succ[v])

    def predecessors(self, v: int) -> list[int]:
        """Direct predecessors (in-neighbours) of ``v``."""
        self._check_node(v)
        return list(self._pred[v])

    def out_degree(self, v: int) -> int:
        """Number of direct successors of ``v``."""
        self._check_node(v)
        return len(self._succ[v])

    def in_degree(self, v: int) -> int:
        """Number of direct predecessors of ``v``."""
        self._check_node(v)
        return len(self._pred[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self._succ[u]

    def nodes(self) -> range:
        """Iterable of all node indices."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[EdgeView]:
        """Iterate over all edges as :class:`EdgeView` objects."""
        for u, targets in enumerate(self._succ):
            for v in targets:
                yield EdgeView(u, v)

    def sources(self) -> list[int]:
        """Nodes with no predecessors."""
        return [v for v in self.nodes() if not self._pred[v]]

    def sinks(self) -> list[int]:
        """Nodes with no successors."""
        return [v for v in self.nodes() if not self._succ[v]]

    # ------------------------------------------------------------------ #
    # structural algorithms
    # ------------------------------------------------------------------ #
    def topological_order(self) -> list[int]:
        """A topological order of the nodes (Kahn's algorithm, cached).

        Raises
        ------
        CycleError
            If the graph contains a directed cycle.
        """
        if self._topo_cache is None:
            indeg = [len(p) for p in self._pred]
            queue = deque(v for v in self.nodes() if indeg[v] == 0)
            order: list[int] = []
            while queue:
                v = queue.popleft()
                order.append(v)
                for w in self._succ[v]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        queue.append(w)
            if len(order) != self.num_nodes:
                raise CycleError("graph contains a directed cycle")
            self._topo_cache = order
        return list(self._topo_cache)

    def is_acyclic(self) -> bool:
        """Whether the graph is a DAG."""
        try:
            self.topological_order()
            return True
        except CycleError:
            return False

    def levels(self) -> np.ndarray:
        """Top level of every node: length of the longest edge-path from any source.

        Sources have level 0.  This is the wavefront index used by
        level-based schedulers such as HDagg.
        """
        if self._level_cache is None:
            lvl = np.zeros(self.num_nodes, dtype=np.int64)
            for v in self.topological_order():
                for w in self._succ[v]:
                    if lvl[v] + 1 > lvl[w]:
                        lvl[w] = lvl[v] + 1
            self._level_cache = lvl
        return self._level_cache.copy()

    def bottom_levels(self) -> np.ndarray:
        """Bottom level of every node: maximum total work on any path starting at it.

        ``bl(v) = w(v) + max_{(v,u) in E} bl(u)`` (and ``bl(v) = w(v)`` for
        sinks).  Used as the priority of the BL-EST list scheduler.
        """
        if self._bottom_level_cache is None:
            bl = self._work.copy()
            for v in reversed(self.topological_order()):
                if self._succ[v]:
                    bl[v] = self._work[v] + max(bl[u] for u in self._succ[v])
            self._bottom_level_cache = bl
        return self._bottom_level_cache.copy()

    def critical_path_length(self) -> float:
        """Maximum total work along any directed path (the work-span)."""
        if self.num_nodes == 0:
            return 0.0
        return float(self.bottom_levels().max())

    def depth(self) -> int:
        """Number of levels (longest path in edges, plus one); 0 for an empty DAG."""
        if self.num_nodes == 0:
            return 0
        return int(self.levels().max()) + 1

    def has_path(self, source: int, target: int) -> bool:
        """Whether a directed path from ``source`` to ``target`` exists.

        The trivial path of length zero (``source == target``) counts.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            return True
        seen = {source}
        stack = [source]
        while stack:
            v = stack.pop()
            for w in self._succ[v]:
                if w == target:
                    return True
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return False

    def descendants(self, v: int) -> set[int]:
        """All nodes reachable from ``v`` (excluding ``v``)."""
        self._check_node(v)
        seen: set[int] = set()
        stack = list(self._succ[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._succ[u])
        return seen

    def ancestors(self, v: int) -> set[int]:
        """All nodes that can reach ``v`` (excluding ``v``)."""
        self._check_node(v)
        seen: set[int] = set()
        stack = list(self._pred[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._pred[u])
        return seen

    def weakly_connected_components(self) -> list[list[int]]:
        """Weakly connected components, each as a sorted node list."""
        seen = [False] * self.num_nodes
        components: list[list[int]] = []
        for start in self.nodes():
            if seen[start]:
                continue
            comp = []
            stack = [start]
            seen[start] = True
            while stack:
                v = stack.pop()
                comp.append(v)
                for w in self._succ[v] + self._pred[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            components.append(sorted(comp))
        return components

    def largest_connected_component(self) -> "ComputationalDAG":
        """The induced sub-DAG on the largest weakly connected component.

        Mirrors the paper's preprocessing of extracted GraphBLAS DAGs
        (Appendix B.1).  Node indices are relabelled contiguously preserving
        relative order.
        """
        if self.num_nodes == 0:
            return ComputationalDAG(0, name=self.name)
        components = self.weakly_connected_components()
        best = max(components, key=len)
        return self.induced_subgraph(best)

    def induced_subgraph(self, nodes: Sequence[int]) -> "ComputationalDAG":
        """Induced sub-DAG on ``nodes`` with contiguous relabelling.

        The ``i``-th node of the result corresponds to ``nodes[i]``.
        """
        index = {v: i for i, v in enumerate(nodes)}
        sub = ComputationalDAG(
            len(nodes),
            work_weights=[self._work[v] for v in nodes],
            comm_weights=[self._comm[v] for v in nodes],
            name=f"{self.name}_sub",
        )
        for v in nodes:
            for w in self._succ[v]:
                if w in index:
                    sub.add_edge(index[v], index[w])
        return sub

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` with ``work``/``comm`` node attrs."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for v in self.nodes():
            graph.add_node(v, work=self.work(v), comm=self.comm(v))
        for edge in self.edges():
            graph.add_edge(edge.source, edge.target)
        return graph

    @classmethod
    def from_networkx(cls, graph, name: str | None = None) -> "ComputationalDAG":
        """Build from a :class:`networkx.DiGraph`.

        Node attributes ``work`` and ``comm`` are used when present
        (default 1.0).  Nodes are relabelled ``0..n-1`` in sorted order of
        their original labels.
        """
        nodes = sorted(graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        dag = cls(
            len(nodes),
            work_weights=[float(graph.nodes[v].get("work", 1.0)) for v in nodes],
            comm_weights=[float(graph.nodes[v].get("comm", 1.0)) for v in nodes],
            name=name or str(graph.name or "dag"),
        )
        for u, v in graph.edges():
            dag.add_edge(index[u], index[v])
        if not dag.is_acyclic():
            raise CycleError("input graph is not acyclic")
        return dag

    def copy(self) -> "ComputationalDAG":
        """Deep copy of the DAG."""
        clone = ComputationalDAG(
            self.num_nodes,
            work_weights=self._work,
            comm_weights=self._comm,
            name=self.name,
        )
        for u, targets in enumerate(self._succ):
            for v in targets:
                clone._succ[u].append(v)
                clone._pred[v].append(u)
                clone._num_edges += 1
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ComputationalDAG(name={self.name!r}, n={self.num_nodes}, "
            f"m={self.num_edges})"
        )
