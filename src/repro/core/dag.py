"""Weighted computational DAG container backed by CSR adjacency.

A :class:`ComputationalDAG` stores the structure of a computation as used
throughout the paper (Section 3.1): nodes are operations, directed edges are
data dependencies, and each node ``v`` carries an integer *work weight*
``w(v)`` (time to execute ``v``) and a *communication weight* ``c(v)`` (cost
of sending the output of ``v`` to another processor).

The container is append-only with respect to nodes (nodes are integers
``0..n-1``); edges may be added freely as long as the graph stays acyclic.
Derived quantities used by the schedulers (topological order, levels,
bottom levels, transitive reachability queries, ...) are computed lazily and
cached; every mutation invalidates the caches.

Implementation notes
--------------------
Adjacency lives in flat edge buffers (``source``/``target`` int64 arrays
with capacity doubling, so ``add_node``/``add_edge`` are amortized O(1))
from which two CSR (compressed sparse row) views are materialised lazily:
``succ_indptr``/``succ_indices`` and ``pred_indptr``/``pred_indices``.
Rows preserve edge insertion order, so neighbourhood traversals visit
exactly the same sequence as the historical list-of-lists container.  The
derived kernels (levels, bottom levels, reachability, induced subgraphs)
are vectorized over the CSR arrays in :mod:`repro.core.csr`; mutating the
DAG simply drops the CSR arrays and they are rebuilt in ``O(n + m)`` on the
next structural query (*lazy rebuild* — no caller of the mutation API needs
to change).

For bulk construction, :class:`DagBuilder` exposes the same append API
without any per-edge validation (plus vectorized ``add_edges_array``) and
``freeze()``-s into a :class:`ComputationalDAG` with a single vectorized
duplicate check.  The DAG-database generators and the coarsening quotient
builder emit their edge buffers directly through it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .csr import (
    bottom_levels_csr,
    build_csr,
    gather_rows,
    has_path_csr,
    reachable_mask,
    topological_levels,
)
from .dynorder import DynamicTopologicalOrder
from .exceptions import CycleError, DagError

__all__ = ["ComputationalDAG", "DagBuilder", "EdgeView"]

_INT = np.int64


@dataclass(frozen=True)
class EdgeView:
    """A single directed edge ``(source, target)`` of a DAG."""

    source: int
    target: int


def _grow(buffer: np.ndarray, needed: int) -> np.ndarray:
    """Return a buffer of capacity >= ``needed`` (amortized doubling)."""
    capacity = buffer.shape[0]
    if needed <= capacity:
        return buffer
    new_capacity = max(needed, 2 * capacity, 16)
    grown = np.empty(new_capacity, dtype=buffer.dtype)
    grown[:capacity] = buffer
    return grown


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


def _append_node(
    work_buf: np.ndarray, comm_buf: np.ndarray, n: int, work: float, comm: float
) -> tuple[np.ndarray, np.ndarray]:
    """Append one weight pair at index ``n`` (shared by DAG and builder)."""
    if work < 0 or comm < 0:
        raise DagError("node weights must be non-negative")
    work_buf = _grow(work_buf, n + 1)
    comm_buf = _grow(comm_buf, n + 1)
    work_buf[n] = float(work)
    comm_buf[n] = float(comm)
    return work_buf, comm_buf


def _append_nodes(
    work_buf: np.ndarray,
    comm_buf: np.ndarray,
    n: int,
    count: int,
    work: float,
    comm: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Append ``count`` identical weight pairs starting at index ``n``."""
    if work < 0 or comm < 0:
        raise DagError("node weights must be non-negative")
    work_buf = _grow(work_buf, n + count)
    comm_buf = _grow(comm_buf, n + count)
    work_buf[n : n + count] = float(work)
    comm_buf[n : n + count] = float(comm)
    return work_buf, comm_buf


class ComputationalDAG:
    """A directed acyclic graph with per-node work and communication weights.

    Parameters
    ----------
    num_nodes:
        Number of nodes to create initially.  Nodes are labelled
        ``0 .. num_nodes - 1``.
    work_weights:
        Optional sequence of work weights ``w(v)``; defaults to all ones.
    comm_weights:
        Optional sequence of communication weights ``c(v)``; defaults to all
        ones.
    name:
        Optional human readable name (used by the DAG database and reports).
    """

    def __init__(
        self,
        num_nodes: int = 0,
        work_weights: Sequence[float] | None = None,
        comm_weights: Sequence[float] | None = None,
        name: str = "dag",
    ) -> None:
        if num_nodes < 0:
            raise DagError(f"num_nodes must be non-negative, got {num_nodes}")
        self.name = name
        self._n = int(num_nodes)
        self._work = self._init_weights(work_weights, num_nodes, "work_weights")
        self._comm = self._init_weights(comm_weights, num_nodes, "comm_weights")
        self._m = 0
        self._esrc = np.empty(0, dtype=_INT)
        self._edst = np.empty(0, dtype=_INT)
        self._edge_set: set[tuple[int, int]] | None = set()
        self._invalidate()

    @classmethod
    def _from_buffers(
        cls,
        num_nodes: int,
        work: np.ndarray,
        comm: np.ndarray,
        sources: np.ndarray,
        targets: np.ndarray,
        name: str,
    ) -> "ComputationalDAG":
        """Adopt pre-validated buffers without copying (builder fast path)."""
        dag = cls.__new__(cls)
        dag.name = name
        dag._n = int(num_nodes)
        dag._work = work
        dag._comm = comm
        dag._m = int(sources.shape[0])
        dag._esrc = sources
        dag._edst = targets
        dag._edge_set = None  # materialised lazily, only if mutated/queried
        dag._invalidate()
        return dag

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _init_weights(
        weights: Sequence[float] | None, num_nodes: int, label: str
    ) -> np.ndarray:
        if weights is None:
            return np.ones(num_nodes, dtype=np.float64)
        arr = np.asarray(weights, dtype=np.float64)
        if arr.shape != (num_nodes,):
            raise DagError(
                f"{label} must have length {num_nodes}, got shape {arr.shape}"
            )
        if np.any(arr < 0):
            raise DagError(f"{label} must be non-negative")
        return arr.copy()

    @classmethod
    def from_edge_arrays(
        cls,
        num_nodes: int,
        sources: np.ndarray | Sequence[int],
        targets: np.ndarray | Sequence[int],
        work_weights: Sequence[float] | None = None,
        comm_weights: Sequence[float] | None = None,
        name: str = "dag",
        *,
        validate: bool = True,
    ) -> "ComputationalDAG":
        """Build a DAG from parallel edge arrays in one shot.

        With ``validate`` (default) the edge arrays are checked for
        out-of-range endpoints, self-loops and duplicates using vectorized
        passes; acyclicity is, as everywhere, verified lazily on the first
        topological query.
        """
        if num_nodes < 0:
            raise DagError(f"num_nodes must be non-negative, got {num_nodes}")
        src = np.ascontiguousarray(sources, dtype=_INT)
        dst = np.ascontiguousarray(targets, dtype=_INT)
        if src.shape != dst.shape or src.ndim != 1:
            raise DagError("sources and targets must be 1-D arrays of equal length")
        if validate:
            _validate_edge_arrays(num_nodes, src, dst)
        work = cls._init_weights(work_weights, num_nodes, "work_weights")
        comm = cls._init_weights(comm_weights, num_nodes, "comm_weights")
        return cls._from_buffers(num_nodes, work, comm, src.copy(), dst.copy(), name)

    def add_node(self, work: float = 1.0, comm: float = 1.0) -> int:
        """Append a node and return its index (amortized O(1))."""
        self._work, self._comm = _append_node(self._work, self._comm, self._n, work, comm)
        self._n += 1
        dyn = self._dyn_order
        self._invalidate()
        if dyn is not None:
            dyn.add_node()
            self._dyn_order = dyn
        return self._n - 1

    def add_nodes(self, count: int, work: float = 1.0, comm: float = 1.0) -> list[int]:
        """Append ``count`` nodes with identical weights; return their indices."""
        if count <= 0:
            return []
        self._work, self._comm = _append_nodes(
            self._work, self._comm, self._n, count, work, comm
        )
        first = self._n
        self._n += count
        dyn = self._dyn_order
        self._invalidate()
        if dyn is not None:
            dyn.add_node(count)
            self._dyn_order = dyn
        return list(range(first, self._n))

    def add_edge(self, source: int, target: int, *, check_cycle: bool = False) -> None:
        """Add the directed edge ``source -> target``.

        Duplicate edges are rejected.  When ``check_cycle`` is true, the edge
        is only inserted if it does not create a directed cycle; otherwise
        acyclicity is verified lazily the first time a topological order is
        requested.

        Checked insertions are served by a persistent Pearce–Kelly dynamic
        topological order (:class:`~repro.core.dynorder.
        DynamicTopologicalOrder`): the first checked insertion builds it in
        one Kahn pass, every further one costs O(affected region) — no CSR
        rebuild or full reachability walk per edge.  The structure survives
        node additions and consecutive checked insertions; an *unchecked*
        insertion drops it (the edge may close a cycle the structure cannot
        represent), after which the next checked insertion rebuilds.
        """
        self._check_node(source)
        self._check_node(target)
        source = int(source)
        target = int(target)
        if source == target:
            raise CycleError(f"self-loop on node {source} is not allowed")
        edge_set = self._ensure_edge_set()
        if (source, target) in edge_set:
            raise DagError(f"duplicate edge ({source}, {target})")
        dyn = None
        if check_cycle:
            dyn = self._dyn_order
            if dyn is None:
                try:
                    dyn = DynamicTopologicalOrder.from_edges(
                        self._n,
                        zip(
                            self._esrc[: self._m].tolist(),
                            self._edst[: self._m].tolist(),
                        ),
                    )
                except CycleError:
                    # the *existing* edges are already cyclic (legal until a
                    # topological query): fall back to the reachability check
                    # for this insertion, leaving no structure behind
                    dyn = None
                    if self.has_path(target, source):
                        raise CycleError(
                            f"edge ({source}, {target}) would create a "
                            f"directed cycle"
                        ) from None
            if dyn is not None and not dyn.add_edge(source, target):
                self._dyn_order = dyn  # reusable: a rejected edge changes nothing
                raise CycleError(
                    f"edge ({source}, {target}) would create a directed cycle"
                )
        self._esrc = _grow(self._esrc, self._m + 1)
        self._edst = _grow(self._edst, self._m + 1)
        self._esrc[self._m] = source
        self._edst[self._m] = target
        self._m += 1
        edge_set.add((source, target))
        self._invalidate()
        self._dyn_order = dyn

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add many edges at once."""
        for u, v in edges:
            self.add_edge(u, v)

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise DagError(f"node {v} does not exist (n={self._n})")

    def _ensure_edge_set(self) -> set[tuple[int, int]]:
        if self._edge_set is None:
            self._edge_set = set(
                zip(self._esrc[: self._m].tolist(), self._edst[: self._m].tolist())
            )
        return self._edge_set

    def _invalidate(self) -> None:
        """Drop the CSR arrays and every derived cache (called on mutation)."""
        self._succ_indptr: np.ndarray | None = None
        self._succ_indices: np.ndarray | None = None
        self._pred_indptr: np.ndarray | None = None
        self._pred_indices: np.ndarray | None = None
        self._topo_cache: list[int] | None = None
        self._level_cache: np.ndarray | None = None
        self._bottom_level_cache: np.ndarray | None = None
        # content fingerprint memo (filled by repro.api.request.dag_fingerprint)
        self._content_fingerprint: str | None = None
        # Pearce–Kelly structure for checked insertions; the mutation sites
        # that can keep it alive (add_edge/add_node/add_nodes) restore it
        # right after calling _invalidate
        self._dyn_order: "DynamicTopologicalOrder | None" = None

    def _ensure_csr(self) -> None:
        if self._succ_indptr is not None:
            return
        src = self._esrc[: self._m]
        dst = self._edst[: self._m]
        succ_indptr, succ_indices = build_csr(self._n, src, dst)
        pred_indptr, pred_indices = build_csr(self._n, dst, src)
        for array in (succ_indptr, succ_indices, pred_indptr, pred_indices):
            array.flags.writeable = False
        self._succ_indptr = succ_indptr
        self._succ_indices = succ_indices
        self._pred_indptr = pred_indptr
        self._pred_indices = pred_indices

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._m

    @property
    def work_weights(self) -> np.ndarray:
        """Work weight vector ``w`` (read-only view)."""
        return _readonly(self._work[: self._n])

    @property
    def comm_weights(self) -> np.ndarray:
        """Communication weight vector ``c`` (read-only view)."""
        return _readonly(self._comm[: self._n])

    def work(self, v: int) -> float:
        """Work weight ``w(v)``."""
        return float(self._work[v])

    def comm(self, v: int) -> float:
        """Communication weight ``c(v)``."""
        return float(self._comm[v])

    def _ensure_writable_weights(self) -> None:
        """Copy-on-write hook: detach memory-mapped weight buffers before a write.

        In-memory DAGs always own writable weight buffers, so this is a
        flag check; a DAG loaded zero-copy from a ``.hdagb`` mapping (see
        :mod:`repro.io.hdagb`) carries read-only views and the first weight
        mutation silently replaces them with private copies.
        """
        if not self._work.flags.writeable:
            self._work = np.array(self._work, dtype=np.float64)
        if not self._comm.flags.writeable:
            self._comm = np.array(self._comm, dtype=np.float64)

    def set_work(self, v: int, value: float) -> None:
        """Set ``w(v)``."""
        if value < 0:
            raise DagError("work weight must be non-negative")
        self._check_node(v)
        self._ensure_writable_weights()
        self._work[v] = value
        self._bottom_level_cache = None
        self._content_fingerprint = None

    def set_comm(self, v: int, value: float) -> None:
        """Set ``c(v)``."""
        if value < 0:
            raise DagError("communication weight must be non-negative")
        self._check_node(v)
        self._ensure_writable_weights()
        self._comm[v] = value
        self._content_fingerprint = None

    def set_work_weights(self, values: Sequence[float]) -> None:
        """Replace the whole work weight vector in one vectorized assignment."""
        weights = self._init_weights(values, self._n, "work_weights")
        self._ensure_writable_weights()
        self._work[: self._n] = weights
        self._bottom_level_cache = None
        self._content_fingerprint = None

    def set_comm_weights(self, values: Sequence[float]) -> None:
        """Replace the whole communication weight vector."""
        weights = self._init_weights(values, self._n, "comm_weights")
        self._ensure_writable_weights()
        self._comm[: self._n] = weights
        self._content_fingerprint = None

    @property
    def total_work(self) -> float:
        """Sum of all work weights."""
        return float(self._work[: self._n].sum())

    @property
    def total_comm(self) -> float:
        """Sum of all communication weights."""
        return float(self._comm[: self._n].sum())

    # ------------------------------------------------------------------ #
    # adjacency access
    # ------------------------------------------------------------------ #
    @property
    def succ_indptr(self) -> np.ndarray:
        """CSR row pointer of the successor structure (read-only)."""
        self._ensure_csr()
        return self._succ_indptr  # type: ignore[return-value]

    @property
    def succ_indices(self) -> np.ndarray:
        """CSR column indices of the successor structure (read-only)."""
        self._ensure_csr()
        return self._succ_indices  # type: ignore[return-value]

    @property
    def pred_indptr(self) -> np.ndarray:
        """CSR row pointer of the predecessor structure (read-only)."""
        self._ensure_csr()
        return self._pred_indptr  # type: ignore[return-value]

    @property
    def pred_indices(self) -> np.ndarray:
        """CSR column indices of the predecessor structure (read-only)."""
        self._ensure_csr()
        return self._pred_indices  # type: ignore[return-value]

    def succ(self, v: int) -> np.ndarray:
        """Direct successors of ``v`` as a zero-copy read-only array slice."""
        self._check_node(v)
        self._ensure_csr()
        return self._succ_indices[self._succ_indptr[v] : self._succ_indptr[v + 1]]

    def pred(self, v: int) -> np.ndarray:
        """Direct predecessors of ``v`` as a zero-copy read-only array slice."""
        self._check_node(v)
        self._ensure_csr()
        return self._pred_indices[self._pred_indptr[v] : self._pred_indptr[v + 1]]

    def successors(self, v: int) -> list[int]:
        """Direct successors (out-neighbours) of ``v`` as a fresh list.

        Prefer :meth:`succ` in hot loops; this list-returning accessor is
        kept for compatibility and convenience.
        """
        return self.succ(v).tolist()

    def predecessors(self, v: int) -> list[int]:
        """Direct predecessors (in-neighbours) of ``v`` as a fresh list.

        Prefer :meth:`pred` in hot loops.
        """
        return self.pred(v).tolist()

    def out_degree(self, v: int) -> int:
        """Number of direct successors of ``v``."""
        self._check_node(v)
        self._ensure_csr()
        return int(self._succ_indptr[v + 1] - self._succ_indptr[v])

    def in_degree(self, v: int) -> int:
        """Number of direct predecessors of ``v``."""
        self._check_node(v)
        self._ensure_csr()
        return int(self._pred_indptr[v + 1] - self._pred_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        self._ensure_csr()
        return np.diff(self._succ_indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees."""
        self._ensure_csr()
        return np.diff(self._pred_indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists (O(out-degree) scan).

        Reads the CSR row directly; the edge set used for incremental
        duplicate checks is only materialised by :meth:`add_edge`.
        """
        self._check_node(v)
        return bool((self.succ(u) == int(v)).any())

    def nodes(self) -> range:
        """Iterable of all node indices."""
        return range(self._n)

    def edges(self) -> Iterator[EdgeView]:
        """Iterate over all edges as :class:`EdgeView` objects."""
        sources, targets = self.edge_arrays()
        for u, v in zip(sources.tolist(), targets.tolist()):
            yield EdgeView(u, v)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel ``(sources, targets)`` arrays of all edges (read-only).

        Edges are ordered by source, with insertion order within each
        source — the same order as :meth:`edges`.
        """
        self._ensure_csr()
        sources = np.repeat(
            np.arange(self._n, dtype=_INT), np.diff(self._succ_indptr)
        )
        return _readonly(sources), self._succ_indices  # type: ignore[return-value]

    def sources(self) -> list[int]:
        """Nodes with no predecessors."""
        self._ensure_csr()
        return np.flatnonzero(np.diff(self._pred_indptr) == 0).tolist()

    def sinks(self) -> list[int]:
        """Nodes with no successors."""
        self._ensure_csr()
        return np.flatnonzero(np.diff(self._succ_indptr) == 0).tolist()

    # ------------------------------------------------------------------ #
    # structural algorithms
    # ------------------------------------------------------------------ #
    def topological_order(self) -> list[int]:
        """A topological order of the nodes (Kahn's algorithm, cached).

        The order matches the historical FIFO Kahn traversal exactly, so
        every order-sensitive consumer (batched ILP windows, superstep
        numbering, ...) behaves identically to the list-based container.

        Raises
        ------
        CycleError
            If the graph contains a directed cycle.
        """
        if self._topo_cache is None:
            self._ensure_csr()
            indptr = self._succ_indptr.tolist()  # type: ignore[union-attr]
            succ = self._succ_indices.tolist()  # type: ignore[union-attr]
            indegree = np.diff(self._pred_indptr).tolist()
            queue = deque(v for v in range(self._n) if indegree[v] == 0)
            order: list[int] = []
            while queue:
                v = queue.popleft()
                order.append(v)
                for w in succ[indptr[v] : indptr[v + 1]]:
                    indegree[w] -= 1
                    if indegree[w] == 0:
                        queue.append(w)
            if len(order) != self._n:
                raise CycleError("graph contains a directed cycle")
            self._topo_cache = order
        return list(self._topo_cache)

    def is_acyclic(self) -> bool:
        """Whether the graph is a DAG."""
        try:
            self._levels_internal()
            return True
        except CycleError:
            return False

    def _levels_internal(self) -> np.ndarray:
        if self._level_cache is None:
            self._ensure_csr()
            self._level_cache = topological_levels(
                self._n,
                self._succ_indptr,
                self._succ_indices,
                self._pred_indptr,
            )
        return self._level_cache

    def levels(self) -> np.ndarray:
        """Top level of every node: length of the longest edge-path from any source.

        Sources have level 0.  This is the wavefront index used by
        level-based schedulers such as HDagg.  Computed with the vectorized
        level-synchronous sweep in :func:`repro.core.csr.topological_levels`.
        """
        return self._levels_internal().copy()

    def bottom_levels(self) -> np.ndarray:
        """Bottom level of every node: maximum total work on any path starting at it.

        ``bl(v) = w(v) + max_{(v,u) in E} bl(u)`` (and ``bl(v) = w(v)`` for
        sinks).  Used as the priority of the BL-EST list scheduler.
        Vectorized level group by level group via ``np.maximum.reduceat``.
        """
        if self._bottom_level_cache is None:
            levels = self._levels_internal()
            self._bottom_level_cache = bottom_levels_csr(
                levels,
                self._succ_indptr,
                self._succ_indices,
                self._work[: self._n],
            )
        return self._bottom_level_cache.copy()

    def critical_path_length(self) -> float:
        """Maximum total work along any directed path (the work-span)."""
        if self._n == 0:
            return 0.0
        return float(self.bottom_levels().max())

    def depth(self) -> int:
        """Number of levels (longest path in edges, plus one); 0 for an empty DAG."""
        if self._n == 0:
            return 0
        return int(self._levels_internal().max()) + 1

    def has_path(self, source: int, target: int) -> bool:
        """Whether a directed path from ``source`` to ``target`` exists.

        The trivial path of length zero (``source == target``) counts.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            return True
        self._ensure_csr()
        return has_path_csr(
            self._succ_indptr, self._succ_indices, int(source), int(target), self._n
        )

    def descendants_mask(self, v: int) -> np.ndarray:
        """Boolean mask of all nodes reachable from ``v`` (excluding ``v``)."""
        self._check_node(v)
        self._ensure_csr()
        return reachable_mask(self._succ_indptr, self._succ_indices, int(v), self._n)

    def ancestors_mask(self, v: int) -> np.ndarray:
        """Boolean mask of all nodes that can reach ``v`` (excluding ``v``)."""
        self._check_node(v)
        self._ensure_csr()
        return reachable_mask(self._pred_indptr, self._pred_indices, int(v), self._n)

    def descendants(self, v: int) -> set[int]:
        """All nodes reachable from ``v`` (excluding ``v``)."""
        return set(np.flatnonzero(self.descendants_mask(v)).tolist())

    def ancestors(self, v: int) -> set[int]:
        """All nodes that can reach ``v`` (excluding ``v``)."""
        return set(np.flatnonzero(self.ancestors_mask(v)).tolist())

    def weakly_connected_components(self) -> list[list[int]]:
        """Weakly connected components, each as a sorted node list.

        Union-find over the flat edge buffers; components are ordered by
        their smallest member (the historical DFS output order).
        """
        parent = list(range(self._n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]  # path halving
                x = parent[x]
            return x

        for u, v in zip(self._esrc[: self._m].tolist(), self._edst[: self._m].tolist()):
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[rv] = ru

        members: dict[int, list[int]] = {}
        components: list[list[int]] = []
        for v in range(self._n):
            root = find(v)
            group = members.get(root)
            if group is None:
                group = []
                members[root] = group
                components.append(group)
            group.append(v)
        return components

    def largest_connected_component(self) -> "ComputationalDAG":
        """The induced sub-DAG on the largest weakly connected component.

        Mirrors the paper's preprocessing of extracted GraphBLAS DAGs
        (Appendix B.1).  Node indices are relabelled contiguously preserving
        relative order.
        """
        if self._n == 0:
            return ComputationalDAG(0, name=self.name)
        components = self.weakly_connected_components()
        best = max(components, key=len)
        return self.induced_subgraph(best)

    def induced_subgraph(self, nodes: Sequence[int]) -> "ComputationalDAG":
        """Induced sub-DAG on ``nodes`` with contiguous relabelling.

        The ``i``-th node of the result corresponds to ``nodes[i]``.
        Fully vectorized: one ragged gather over the successor rows of
        ``nodes`` plus a membership filter.
        """
        nodes_arr = np.asarray(list(nodes), dtype=_INT)
        if nodes_arr.size and (
            nodes_arr.min() < 0 or nodes_arr.max() >= self._n
        ):
            raise DagError("induced_subgraph: node index out of range")
        if np.unique(nodes_arr).size != nodes_arr.size:
            raise DagError("induced_subgraph: duplicate node ids")
        self._ensure_csr()
        index = np.full(self._n, -1, dtype=_INT)
        index[nodes_arr] = np.arange(nodes_arr.size, dtype=_INT)
        targets, offsets = gather_rows(
            self._succ_indptr, self._succ_indices, nodes_arr
        )
        new_sources = np.repeat(
            np.arange(nodes_arr.size, dtype=_INT), np.diff(offsets)
        )
        new_targets = index[targets]
        keep = new_targets >= 0
        return ComputationalDAG._from_buffers(
            nodes_arr.size,
            self._work[nodes_arr],
            self._comm[nodes_arr],
            np.ascontiguousarray(new_sources[keep]),
            np.ascontiguousarray(new_targets[keep]),
            name=f"{self.name}_sub",
        )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` with ``work``/``comm`` node attrs."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for v in self.nodes():
            graph.add_node(v, work=self.work(v), comm=self.comm(v))
        for edge in self.edges():
            graph.add_edge(edge.source, edge.target)
        return graph

    @classmethod
    def from_networkx(cls, graph, name: str | None = None) -> "ComputationalDAG":
        """Build from a :class:`networkx.DiGraph`.

        Node attributes ``work`` and ``comm`` are used when present
        (default 1.0).  Nodes are relabelled ``0..n-1`` in sorted order of
        their original labels.
        """
        nodes = sorted(graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        dag = cls(
            len(nodes),
            work_weights=[float(graph.nodes[v].get("work", 1.0)) for v in nodes],
            comm_weights=[float(graph.nodes[v].get("comm", 1.0)) for v in nodes],
            name=name or str(graph.name or "dag"),
        )
        for u, v in graph.edges():
            dag.add_edge(index[u], index[v])
        if not dag.is_acyclic():
            raise CycleError("input graph is not acyclic")
        return dag

    def copy(self) -> "ComputationalDAG":
        """Deep copy of the DAG (array copies, no per-edge work)."""
        return ComputationalDAG._from_buffers(
            self._n,
            self._work[: self._n].copy(),
            self._comm[: self._n].copy(),
            self._esrc[: self._m].copy(),
            self._edst[: self._m].copy(),
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ComputationalDAG(name={self.name!r}, n={self.num_nodes}, "
            f"m={self.num_edges})"
        )


def _check_edge_endpoints(num_nodes: int, src: np.ndarray, dst: np.ndarray) -> None:
    """Vectorized endpoint-range and self-loop validation of edge arrays."""
    if src.size == 0:
        return
    if src.min() < 0 or dst.min() < 0 or src.max() >= num_nodes or dst.max() >= num_nodes:
        raise DagError(f"edge endpoint out of range (n={num_nodes})")
    loops = src == dst
    if loops.any():
        v = int(src[np.argmax(loops)])
        raise CycleError(f"self-loop on node {v} is not allowed")


def _check_no_duplicate_edges(num_nodes: int, src: np.ndarray, dst: np.ndarray) -> None:
    """Vectorized duplicate-edge validation (endpoints must already be valid).

    One explicit sort over the packed edge keys; ``np.unique`` would do the
    same job but goes through a hash table on current numpy, which is several
    times slower on multi-million-edge buffers.
    """
    if src.size == 0:
        return
    keys = src * np.int64(num_nodes) + dst
    sorted_keys = np.sort(keys)
    duplicates = sorted_keys[1:] == sorted_keys[:-1]
    if duplicates.any():
        dup = sorted_keys[int(np.argmax(duplicates))]
        raise DagError(
            f"duplicate edge ({int(dup // num_nodes)}, {int(dup % num_nodes)})"
        )


def _validate_edge_arrays(num_nodes: int, src: np.ndarray, dst: np.ndarray) -> None:
    """Vectorized range / self-loop / duplicate validation of edge arrays."""
    _check_edge_endpoints(num_nodes, src, dst)
    _check_no_duplicate_edges(num_nodes, src, dst)


class DagBuilder:
    """Mutable DAG construction buffers that :meth:`freeze` into a DAG.

    The builder exposes the same append API as :class:`ComputationalDAG`
    but performs no per-edge duplicate bookkeeping — everything is plain
    amortized-O(1) appends into flat numpy buffers, plus the vectorized bulk
    entry points :meth:`add_nodes_array` and :meth:`add_edges_array`.
    Validation (duplicate edges) happens once, vectorized, at
    :meth:`freeze` time; acyclicity stays lazily checked by the frozen DAG
    like everywhere else.

    The builder remains usable after ``freeze()`` (the frozen DAG owns
    trimmed copies of the buffers), so one builder can emit a family of
    growing DAGs.
    """

    def __init__(
        self,
        num_nodes: int = 0,
        work_weights: Sequence[float] | None = None,
        comm_weights: Sequence[float] | None = None,
        name: str = "dag",
    ) -> None:
        if num_nodes < 0:
            raise DagError(f"num_nodes must be non-negative, got {num_nodes}")
        self.name = name
        self._n = int(num_nodes)
        self._work = ComputationalDAG._init_weights(
            work_weights, num_nodes, "work_weights"
        )
        self._comm = ComputationalDAG._init_weights(
            comm_weights, num_nodes, "comm_weights"
        )
        self._m = 0
        self._esrc = np.empty(0, dtype=_INT)
        self._edst = np.empty(0, dtype=_INT)

    @property
    def num_nodes(self) -> int:
        """Number of nodes appended so far."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges appended so far."""
        return self._m

    def add_node(self, work: float = 1.0, comm: float = 1.0) -> int:
        """Append a node and return its index."""
        self._work, self._comm = _append_node(self._work, self._comm, self._n, work, comm)
        self._n += 1
        return self._n - 1

    def add_nodes(self, count: int, work: float = 1.0, comm: float = 1.0) -> list[int]:
        """Append ``count`` nodes with identical weights; return their indices."""
        first = self.add_node_block(count, work, comm)
        return list(range(first, self._n)) if count > 0 else []

    def add_node_block(self, count: int, work: float = 1.0, comm: float = 1.0) -> int:
        """Append ``count`` nodes; return the first index (no index list built).

        The block-emitting generators allocate millions of nodes at once and
        derive ids arithmetically, so materialising the python list that
        :meth:`add_nodes` returns would be pure overhead.
        """
        if count <= 0:
            return self._n
        self._work, self._comm = _append_nodes(
            self._work, self._comm, self._n, count, work, comm
        )
        first = self._n
        self._n += count
        return first

    def add_nodes_array(
        self, work_weights: Sequence[float], comm_weights: Sequence[float] | None = None
    ) -> np.ndarray:
        """Append one node per entry of ``work_weights``; return their indices."""
        work = np.asarray(work_weights, dtype=np.float64)
        comm = (
            np.ones_like(work)
            if comm_weights is None
            else np.asarray(comm_weights, dtype=np.float64)
        )
        if work.shape != comm.shape or work.ndim != 1:
            raise DagError("weight arrays must be 1-D and of equal length")
        if work.size and (work.min() < 0 or comm.min() < 0):
            raise DagError("node weights must be non-negative")
        new_n = self._n + work.size
        self._work = _grow(self._work, new_n)
        self._comm = _grow(self._comm, new_n)
        self._work[self._n : new_n] = work
        self._comm[self._n : new_n] = comm
        first = self._n
        self._n = new_n
        return np.arange(first, new_n, dtype=_INT)

    def add_edge(self, source: int, target: int) -> None:
        """Append the edge ``source -> target`` (bounds-checked, O(1))."""
        if not 0 <= source < self._n:
            raise DagError(f"node {source} does not exist (n={self._n})")
        if not 0 <= target < self._n:
            raise DagError(f"node {target} does not exist (n={self._n})")
        if source == target:
            raise CycleError(f"self-loop on node {source} is not allowed")
        self._esrc = _grow(self._esrc, self._m + 1)
        self._edst = _grow(self._edst, self._m + 1)
        self._esrc[self._m] = source
        self._edst[self._m] = target
        self._m += 1

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Append many edges."""
        for u, v in edges:
            self.add_edge(u, v)

    def add_edges_array(
        self, sources: np.ndarray | Sequence[int], targets: np.ndarray | Sequence[int]
    ) -> None:
        """Append parallel edge arrays in one vectorized bulk operation."""
        src = np.asarray(sources, dtype=_INT)
        dst = np.asarray(targets, dtype=_INT)
        if src.shape != dst.shape or src.ndim != 1:
            raise DagError("sources and targets must be 1-D arrays of equal length")
        if src.size == 0:
            return
        _check_edge_endpoints(self._n, src, dst)
        new_m = self._m + src.size
        self._esrc = _grow(self._esrc, new_m)
        self._edst = _grow(self._edst, new_m)
        self._esrc[self._m : new_m] = src
        self._edst[self._m : new_m] = dst
        self._m = new_m

    def freeze(self, *, validate: bool = True, name: str | None = None) -> ComputationalDAG:
        """Materialise an immutable-by-default :class:`ComputationalDAG`.

        With ``validate`` (default) a single vectorized duplicate-edge check
        runs over the whole edge buffer; endpoint ranges and self-loops are
        already enforced on append.
        """
        src = self._esrc[: self._m].copy()
        dst = self._edst[: self._m].copy()
        if validate:
            _check_no_duplicate_edges(self._n, src, dst)
        return ComputationalDAG._from_buffers(
            self._n,
            self._work[: self._n].copy(),
            self._comm[: self._n].copy(),
            src,
            dst,
            name=name or self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DagBuilder(name={self.name!r}, n={self._n}, m={self._m})"
