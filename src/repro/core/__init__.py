"""Core substrate: computational DAGs, BSP(+NUMA) machines, schedules and costs."""

from .classical import ClassicalSchedule, classical_to_bsp
from .comm import CommStep, CommWindow, eager_comm_schedule, lazy_comm_schedule, required_transfers
from .cost import CostBreakdown, evaluate_cost
from .dag import ComputationalDAG, DagBuilder, EdgeView
from .exceptions import (
    ConfigurationError,
    CycleError,
    DagError,
    MachineError,
    ReproError,
    ScheduleError,
    SolverError,
)
from .machine import BspMachine, MachineSpec
from .parallel import default_workers, parallel_map
from .schedule import BspSchedule
from .serialization import (
    dag_from_dict,
    dag_to_dict,
    load_schedule,
    machine_from_dict,
    machine_to_dict,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .validation import schedule_violations, validate_schedule

__all__ = [
    "BspMachine",
    "BspSchedule",
    "ClassicalSchedule",
    "CommStep",
    "CommWindow",
    "ComputationalDAG",
    "ConfigurationError",
    "CostBreakdown",
    "CycleError",
    "DagBuilder",
    "DagError",
    "EdgeView",
    "MachineError",
    "MachineSpec",
    "ReproError",
    "ScheduleError",
    "SolverError",
    "classical_to_bsp",
    "dag_from_dict",
    "dag_to_dict",
    "eager_comm_schedule",
    "evaluate_cost",
    "lazy_comm_schedule",
    "load_schedule",
    "machine_from_dict",
    "machine_to_dict",
    "default_workers",
    "parallel_map",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "required_transfers",
    "schedule_violations",
    "validate_schedule",
]
