"""Dynamic topological order for incrementally grown DAGs (Pearce–Kelly).

:class:`DynamicTopologicalOrder` maintains a valid topological position
array under edge insertions with the PK1 algorithm of Pearce & Kelly
("A dynamic topological sort algorithm for directed acyclic graphs",
JEA 2007): an insertion ``u -> v`` that already satisfies
``ord[u] < ord[v]`` costs O(1); a violating insertion discovers only the
*affected region* — forward from ``v`` and backward from ``u``, both
bounded by the violated position interval — and permutes the region's
existing positions, so the cost is O(affected region), not O(V + E).

This is the pure-Python twin of the ``pk_order`` kernel in
:mod:`repro.core.kernels` (which serves the coarsener's flat-array working
graphs); here the structure backs ``ComputationalDAG.add_edge(
check_cycle=True)``, replacing the previous full-CSR-rebuild-plus-BFS per
checked insertion.
"""

from __future__ import annotations

from collections import deque

from .exceptions import CycleError

__all__ = ["DynamicTopologicalOrder"]


class DynamicTopologicalOrder:
    """Adjacency lists plus a topological position array kept valid online.

    ``order[x] < order[y]`` holds for every recorded edge ``x -> y``.
    Positions are arbitrary distinct integers (holes are fine); only their
    relative order carries meaning.
    """

    __slots__ = ("succ", "pred", "order")

    def __init__(self, num_nodes: int) -> None:
        self.succ: list[list[int]] = [[] for _ in range(num_nodes)]
        self.pred: list[list[int]] = [[] for _ in range(num_nodes)]
        self.order: list[int] = list(range(num_nodes))

    @classmethod
    def from_edges(cls, num_nodes: int, edges) -> "DynamicTopologicalOrder":
        """Build from an existing edge set in one Kahn pass.

        Raises :class:`CycleError` when the edges contain a directed cycle
        (there is no topological order to maintain).
        """
        self = cls(num_nodes)
        succ = self.succ
        indegree = [0] * num_nodes
        for u, v in edges:
            succ[u].append(v)
            self.pred[v].append(u)
            indegree[v] += 1
        queue = deque(x for x in range(num_nodes) if indegree[x] == 0)
        position = 0
        while queue:
            x = queue.popleft()
            self.order[x] = position
            position += 1
            for w in succ[x]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        if position != num_nodes:
            raise CycleError("edge set contains a directed cycle")
        return self

    def add_node(self, count: int = 1) -> None:
        """Append ``count`` fresh nodes after every existing position."""
        top = (max(self.order) if self.order else -1) + 1
        for i in range(count):
            self.succ.append([])
            self.pred.append([])
            self.order.append(top + i)

    def add_edge(self, source: int, target: int) -> bool:
        """Record edge ``source -> target``; False if it would close a cycle.

        On False the structure is unchanged (the edge is *not* recorded).
        """
        order = self.order
        if order[source] > order[target]:
            lb = order[target]
            ub = order[source]
            # forward region: closure of target under "successor in strip"
            forward = [target]
            seen_f = {target}
            stack = [target]
            while stack:
                x = stack.pop()
                for w in self.succ[x]:
                    if w == source:
                        return False
                    if order[w] <= ub and w not in seen_f:
                        seen_f.add(w)
                        forward.append(w)
                        stack.append(w)
            # backward region: closure of source under "predecessor in strip"
            backward = [source]
            seen_b = {source}
            stack = [source]
            while stack:
                x = stack.pop()
                for w in self.pred[x]:
                    if order[w] >= lb and w not in seen_b:
                        seen_b.add(w)
                        backward.append(w)
                        stack.append(w)
            # permute the region's own positions: backward block first,
            # forward block second, old relative order preserved in each
            backward.sort(key=order.__getitem__)
            forward.sort(key=order.__getitem__)
            region = backward + forward
            positions = sorted(order[x] for x in region)
            for x, pos in zip(region, positions):
                order[x] = pos
        self.succ[source].append(target)
        self.pred[target].append(source)
        return True
