"""Classical (time-indexed) schedules and their conversion to BSP.

The Cilk, BL-EST and ETF baselines assign every node a processor and a
concrete *start time*.  Appendix A.1 of the paper describes how such a
classical schedule is converted into a BSP schedule: process nodes in order
of start time and close the current computation phase (start a new
superstep) whenever the next node to execute has a direct predecessor on a
*different* processor that is not yet assigned to an earlier superstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dag import ComputationalDAG
from .exceptions import ScheduleError
from .machine import BspMachine
from .schedule import BspSchedule

__all__ = ["ClassicalSchedule", "classical_to_bsp"]


@dataclass
class ClassicalSchedule:
    """A classical schedule: per-node processor, start time and finish time.

    ``finish[v]`` defaults to ``start[v] + w(v)`` when not supplied.
    """

    dag: ComputationalDAG
    num_procs: int
    procs: np.ndarray
    start_times: np.ndarray
    finish_times: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.procs = np.asarray(self.procs, dtype=np.int64)
        self.start_times = np.asarray(self.start_times, dtype=np.float64)
        n = self.dag.num_nodes
        if self.procs.shape != (n,) or self.start_times.shape != (n,):
            raise ScheduleError("classical schedule arrays must have length n")
        if self.finish_times is None:
            self.finish_times = self.start_times + self.dag.work_weights
        else:
            self.finish_times = np.asarray(self.finish_times, dtype=np.float64)
            if self.finish_times.shape != (n,):
                raise ScheduleError("finish_times must have length n")

    @property
    def makespan(self) -> float:
        """Completion time of the last node (0 for an empty DAG)."""
        if self.dag.num_nodes == 0:
            return 0.0
        return float(self.finish_times.max())

    def validate(self) -> None:
        """Check precedence (by start/finish time) and non-overlap per processor."""
        dag = self.dag
        for edge in dag.edges():
            if self.finish_times[edge.source] > self.start_times[edge.target] + 1e-9:
                raise ScheduleError(
                    f"edge ({edge.source},{edge.target}): successor starts before "
                    f"predecessor finishes"
                )
        for p in range(self.num_procs):
            nodes = [v for v in dag.nodes() if self.procs[v] == p]
            nodes.sort(key=lambda v: self.start_times[v])
            for a, b in zip(nodes, nodes[1:]):
                if self.finish_times[a] > self.start_times[b] + 1e-9:
                    raise ScheduleError(
                        f"nodes {a} and {b} overlap in time on processor {p}"
                    )


def classical_to_bsp(
    classical: ClassicalSchedule, machine: BspMachine
) -> BspSchedule:
    """Convert a classical schedule into a BSP schedule (Appendix A.1).

    Nodes are visited in order of increasing start time.  A node can join
    the current superstep as long as all of its cross-processor direct
    predecessors are already placed in *earlier* supersteps; otherwise the
    current computation phase is closed and a new superstep begins.  The
    resulting schedule keeps the processor assignment of the classical
    schedule and uses the lazy communication schedule.
    """
    dag = classical.dag
    if machine.num_procs < classical.num_procs:
        raise ScheduleError(
            "machine has fewer processors than the classical schedule uses"
        )
    n = dag.num_nodes
    procs = classical.procs
    supersteps = np.full(n, -1, dtype=np.int64)
    order = sorted(dag.nodes(), key=lambda v: (classical.start_times[v], v))
    current = 0
    for v in order:
        needed = current
        for u in dag.predecessors(v):
            if procs[u] != procs[v]:
                # cross-processor dependency: u must be in a *strictly* earlier
                # superstep for the lazy communication to arrive in time.
                if supersteps[u] >= needed:
                    needed = int(supersteps[u]) + 1
            else:
                if supersteps[u] > needed:
                    needed = int(supersteps[u])
        if needed > current:
            current = needed
        supersteps[v] = current
    return BspSchedule(dag, machine, procs, supersteps)
