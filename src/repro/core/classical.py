"""Classical (time-indexed) schedules and their conversion to BSP.

The Cilk, BL-EST and ETF baselines assign every node a processor and a
concrete *start time*.  Appendix A.1 of the paper describes how such a
classical schedule is converted into a BSP schedule: process nodes in order
of start time and close the current computation phase (start a new
superstep) whenever the next node to execute has a direct predecessor on a
*different* processor that is not yet assigned to an earlier superstep.

Implementation notes
--------------------
The conversion is driven from the DAG's CSR edge arrays.  The superstep
counter of the appendix only ever advances by one, and it advances at node
``v`` exactly when ``v`` has a cross-processor predecessor inside the
current superstep — i.e. a predecessor whose position in the start-time
order is at or after the position where the current superstep began.  So
one vectorized pass computes, for every node, the latest position of any
earlier-starting cross-processor predecessor, and a single linear sweep
over the order replays the counter.  The seed per-predecessor walk is kept
in :func:`repro.core.reference.classical_to_bsp_ref` for differential
testing and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dag import ComputationalDAG
from .exceptions import ScheduleError
from .machine import BspMachine
from .schedule import BspSchedule

__all__ = ["ClassicalSchedule", "classical_to_bsp", "conversion_supersteps"]


@dataclass
class ClassicalSchedule:
    """A classical schedule: per-node processor, start time and finish time.

    ``finish[v]`` defaults to ``start[v] + w(v)`` when not supplied.
    """

    dag: ComputationalDAG
    num_procs: int
    procs: np.ndarray
    start_times: np.ndarray
    finish_times: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.procs = np.asarray(self.procs, dtype=np.int64)
        self.start_times = np.asarray(self.start_times, dtype=np.float64)
        n = self.dag.num_nodes
        if self.procs.shape != (n,) or self.start_times.shape != (n,):
            raise ScheduleError("classical schedule arrays must have length n")
        if self.finish_times is None:
            self.finish_times = self.start_times + self.dag.work_weights
        else:
            self.finish_times = np.asarray(self.finish_times, dtype=np.float64)
            if self.finish_times.shape != (n,):
                raise ScheduleError("finish_times must have length n")

    @property
    def makespan(self) -> float:
        """Completion time of the last node (0 for an empty DAG)."""
        if self.dag.num_nodes == 0:
            return 0.0
        return float(self.finish_times.max())

    def validate(self) -> None:
        """Check precedence (by start/finish time) and non-overlap per processor.

        Both checks are single vectorized passes: precedence as one mask over
        the edge arrays, per-processor overlap by comparing adjacent entries
        of the nodes sorted by ``(processor, start time, node)``.
        """
        dag = self.dag
        src, dst = dag.edge_arrays()
        if src.size:
            bad = self.finish_times[src] > self.start_times[dst] + 1e-9
            if bad.any():
                i = int(np.argmax(bad))
                raise ScheduleError(
                    f"edge ({int(src[i])},{int(dst[i])}): successor starts before "
                    "predecessor finishes"
                )
        n = dag.num_nodes
        if n < 2:
            return
        order = np.lexsort((np.arange(n), self.start_times, self.procs))
        same_proc = self.procs[order][1:] == self.procs[order][:-1]
        overlap = same_proc & (
            self.finish_times[order][:-1] > self.start_times[order][1:] + 1e-9
        )
        if overlap.any():
            i = int(np.argmax(overlap))
            raise ScheduleError(
                f"nodes {int(order[i])} and {int(order[i + 1])} overlap in time "
                f"on processor {int(self.procs[order[i]])}"
            )


def classical_to_bsp(
    classical: ClassicalSchedule, machine: BspMachine
) -> BspSchedule:
    """Convert a classical schedule into a BSP schedule (Appendix A.1).

    Nodes are visited in order of increasing start time.  A node can join
    the current superstep as long as all of its cross-processor direct
    predecessors are already placed in *earlier* supersteps; otherwise the
    current computation phase is closed and a new superstep begins.  The
    resulting schedule keeps the processor assignment of the classical
    schedule and uses the lazy communication schedule.
    """
    dag = classical.dag
    if machine.num_procs < classical.num_procs:
        raise ScheduleError(
            "machine has fewer processors than the classical schedule uses"
        )
    supersteps = conversion_supersteps(dag, classical.procs, classical.start_times)
    return BspSchedule(dag, machine, classical.procs, supersteps)


def conversion_supersteps(
    dag: ComputationalDAG, procs: np.ndarray, start_times: np.ndarray
) -> np.ndarray:
    """The Appendix A.1 superstep numbering of a classical assignment.

    One vectorized pass over the edge arrays computes, for every node, the
    latest start-order position of an earlier-starting cross-processor
    predecessor (the *bump bound*); the superstep counter then advances at
    exactly the positions where the bound reaches into the current run.
    Those bump positions are found with repeated ``argmax`` probes over the
    bound array (one numpy scan per superstep instead of one Python step
    per node); schedules that fragment into very many supersteps fall back
    to the linear counter sweep (:func:`_superstep_bumps_sweep`) once the
    probe count stops paying for itself.  Differential-tested against the
    seed per-predecessor walk
    (:func:`repro.core.reference.classical_to_bsp_ref`).
    """
    n = dag.num_nodes
    supersteps = np.zeros(n, dtype=np.int64)
    if n == 0:
        return supersteps

    order = np.argsort(start_times, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)

    # For every node, the latest start-order position of a cross-processor
    # predecessor that starts earlier.  The superstep counter advances at a
    # node exactly when that position falls inside the run of nodes already
    # assigned to the current superstep.
    latest_cross_pred = np.full(n, -1, dtype=np.int64)
    src, dst = dag.edge_arrays()
    if src.size:
        earlier_cross = (procs[src] != procs[dst]) & (rank[src] < rank[dst])
        np.maximum.at(latest_cross_pred, dst[earlier_cross], rank[src][earlier_cross])

    bound = latest_cross_pred[order]
    bumps = _superstep_bumps_argmax(bound)
    # superstep of a position = number of bump positions at or before it
    supersteps[order] = np.searchsorted(
        bumps, np.arange(n, dtype=np.int64), side="right"
    )
    return supersteps


def _superstep_bumps_argmax(bound: np.ndarray) -> np.ndarray:
    """Positions where the superstep counter advances, by repeated ``argmax``.

    The next bump after a bump at ``q`` is the first position ``p > q``
    with ``bound[p] >= q``; each probe is one vectorized comparison plus an
    ``argmax`` over the remaining suffix.  The probes are budgeted by the
    *total number of elements scanned* (a few multiples of ``n``), not by
    probe count — a schedule that fragments early would otherwise pay a
    full-suffix scan per superstep — and the remainder is finished with the
    linear sweep once the budget is spent.
    """
    n = bound.size
    bumps: list[int] = []
    position, run_start = 0, 0
    scan_budget = 4 * n + 64
    while position < n and scan_budget > 0:
        suffix = bound[position:] >= run_start
        scan_budget -= suffix.size
        offset = int(np.argmax(suffix))
        if not suffix[offset]:
            return np.array(bumps, dtype=np.int64)
        run_start = position + offset
        bumps.append(run_start)
        position = run_start + 1
    if position < n:
        bumps.extend(_superstep_bumps_sweep(bound, position, run_start))
    return np.array(bumps, dtype=np.int64)


def _superstep_bumps_sweep(
    bound: np.ndarray, position: int = 0, run_start: int = 0
) -> list[int]:
    """The seed linear counter sweep (also the fallback tail of the argmax path)."""
    bumps: list[int] = []
    for p, b in enumerate(bound[position:].tolist(), start=position):
        if b >= run_start:
            bumps.append(p)
            run_start = p
    return bumps
