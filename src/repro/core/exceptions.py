"""Exception hierarchy for the repro scheduling framework.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  More specific subclasses distinguish structural problems
in the input DAG, invalid machine descriptions, and invalid schedules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class DagError(ReproError):
    """Raised for structural problems in a computational DAG."""


class CycleError(DagError):
    """Raised when an operation would create (or detects) a directed cycle."""


class MachineError(ReproError):
    """Raised for invalid BSP machine descriptions (bad ``P``, ``g``, ``L`` or NUMA matrix)."""


class ScheduleError(ReproError):
    """Raised when a BSP schedule violates the validity conditions of Section 3.2."""


class SolverError(ReproError):
    """Raised when an ILP backend fails or produces an unusable solution."""


class ConfigurationError(ReproError):
    """Raised for invalid scheduler/pipeline configuration values."""
