"""BSP machine model with optional NUMA effects (paper Sections 3.2 and 3.4).

A :class:`BspMachine` is described by

* ``num_procs`` (``P``): the number of processors,
* ``g``: the time cost of sending one unit of data between processors,
* ``latency`` (``ℓ``): the fixed overhead of every superstep,
* ``numa`` (``λ``): a ``P × P`` matrix of per-pair communication
  multipliers.  The uniform BSP model corresponds to ``λ[p1][p2] = 1`` for
  ``p1 != p2`` and ``0`` on the diagonal.

The paper's NUMA experiments use a binary-tree hierarchy over the processors
where crossing each additional level of the hierarchy multiplies the
communication cost by a factor ``Δ``; :meth:`BspMachine.numa_hierarchy`
builds exactly that matrix (Section 6: for ``P = 8`` and ``Δ = 3`` the costs
from processor 1 are ``λ[0][1] = 1``, ``λ[0][2..3] = 3`` and
``λ[0][4..7] = 9``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .exceptions import MachineError

__all__ = ["BspMachine", "MachineSpec"]


def _uniform_numa(num_procs: int) -> np.ndarray:
    numa = np.ones((num_procs, num_procs), dtype=np.float64)
    np.fill_diagonal(numa, 0.0)
    return numa


@dataclass(frozen=True)
class BspMachine:
    """An immutable BSP(+NUMA) machine description.

    Attributes
    ----------
    num_procs:
        The number of processors ``P``.
    g:
        Per-unit communication cost.
    latency:
        Per-superstep latency ``ℓ``.
    numa:
        ``P × P`` matrix of NUMA multipliers ``λ``.  The diagonal must be
        zero (no cost for "sending" to yourself).
    """

    num_procs: int
    g: float = 1.0
    latency: float = 0.0
    numa: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise MachineError(f"num_procs must be >= 1, got {self.num_procs}")
        if self.g < 0:
            raise MachineError(f"g must be non-negative, got {self.g}")
        if self.latency < 0:
            raise MachineError(f"latency must be non-negative, got {self.latency}")
        numa = self.numa
        if numa is None:
            numa = _uniform_numa(self.num_procs)
        else:
            numa = np.asarray(numa, dtype=np.float64).copy()
            if numa.shape != (self.num_procs, self.num_procs):
                raise MachineError(
                    f"numa matrix must be {self.num_procs}x{self.num_procs}, "
                    f"got shape {numa.shape}"
                )
            if np.any(numa < 0):
                raise MachineError("numa multipliers must be non-negative")
            if np.any(np.diag(numa) != 0):
                raise MachineError("numa matrix diagonal must be zero")
        numa.flags.writeable = False
        object.__setattr__(self, "numa", numa)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(cls, num_procs: int, g: float = 1.0, latency: float = 0.0) -> "BspMachine":
        """Classic BSP machine with uniform communication costs."""
        return cls(num_procs=num_procs, g=g, latency=latency)

    @classmethod
    def numa_hierarchy(
        cls,
        num_procs: int,
        delta: float,
        g: float = 1.0,
        latency: float = 0.0,
    ) -> "BspMachine":
        """Binary-tree NUMA hierarchy with level multiplier ``delta`` (paper §6).

        ``num_procs`` must be a power of two.  Two processors whose lowest
        common ancestor in the binary tree is ``k`` levels above the leaves
        communicate with multiplier ``delta ** (k - 1)`` (so siblings cost 1,
        crossing one extra level costs ``delta``, two extra levels
        ``delta**2``, ...).
        """
        if num_procs < 2 or (num_procs & (num_procs - 1)) != 0:
            raise MachineError(
                f"numa_hierarchy requires a power-of-two processor count >= 2, got {num_procs}"
            )
        if delta <= 0:
            raise MachineError(f"delta must be positive, got {delta}")
        numa = np.zeros((num_procs, num_procs), dtype=np.float64)
        for p1 in range(num_procs):
            for p2 in range(num_procs):
                if p1 == p2:
                    continue
                # Number of levels one has to go up until p1 and p2 share an
                # ancestor: the position of the highest differing bit, 1-based.
                diff = p1 ^ p2
                level = diff.bit_length()  # >= 1
                numa[p1, p2] = delta ** (level - 1)
        return cls(num_procs=num_procs, g=g, latency=latency, numa=numa)

    @classmethod
    def from_numa_matrix(
        cls,
        numa: np.ndarray,
        g: float = 1.0,
        latency: float = 0.0,
    ) -> "BspMachine":
        """Machine defined directly by an explicit NUMA matrix."""
        numa = np.asarray(numa, dtype=np.float64)
        return cls(num_procs=numa.shape[0], g=g, latency=latency, numa=numa)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_uniform(self) -> bool:
        """Whether the machine has the default uniform communication costs."""
        return bool(np.array_equal(self.numa, _uniform_numa(self.num_procs)))

    def comm_multiplier(self, p1: int, p2: int) -> float:
        """NUMA multiplier ``λ[p1][p2]``."""
        return float(self.numa[p1, p2])

    @property
    def average_numa_multiplier(self) -> float:
        """Average of ``λ`` over all ordered pairs of *distinct* processors.

        Used by the BL-EST/ETF baselines to fold NUMA effects into a single
        scalar (Appendix A.1).
        """
        if self.num_procs == 1:
            return 0.0
        total = float(self.numa.sum())
        return total / (self.num_procs * (self.num_procs - 1))

    @property
    def max_numa_multiplier(self) -> float:
        """Largest NUMA multiplier."""
        return float(self.numa.max())

    def with_params(
        self,
        g: float | None = None,
        latency: float | None = None,
    ) -> "BspMachine":
        """A copy of this machine with ``g`` and/or ``latency`` replaced."""
        return BspMachine(
            num_procs=self.num_procs,
            g=self.g if g is None else g,
            latency=self.latency if latency is None else latency,
            numa=self.numa,
        )

    def describe(self) -> str:
        """One-line human readable description."""
        kind = "uniform" if self.is_uniform else "NUMA"
        return (
            f"BspMachine(P={self.num_procs}, g={self.g}, l={self.latency}, {kind})"
        )


@dataclass(frozen=True)
class MachineSpec:
    """A declarative machine-parameter point (``P``, ``g``, ``ℓ``, optional ``Δ``).

    The serializable counterpart of :class:`BspMachine`: four plain scalars
    instead of a materialised ``P × P`` NUMA matrix, so specs are cheap to
    hash, compare and ship across process or wire boundaries.  The
    experiment grids of :mod:`repro.analysis.experiments` and the
    :class:`repro.api.ScheduleRequest` wire format are both built from
    these.
    """

    num_procs: int
    g: float = 1.0
    latency: float = 5.0
    numa_delta: float | None = None

    def build(self) -> BspMachine:
        """Materialise the :class:`BspMachine`."""
        if self.numa_delta is None:
            return BspMachine.uniform(self.num_procs, g=self.g, latency=self.latency)
        return BspMachine.numa_hierarchy(
            self.num_procs, delta=self.numa_delta, g=self.g, latency=self.latency
        )

    def label(self) -> str:
        """Short label used in table headers."""
        base = f"P={self.num_procs},g={self.g:g},l={self.latency:g}"
        if self.numa_delta is not None:
            base += f",D={self.numa_delta:g}"
        return base

    def to_dict(self) -> dict:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        return {
            "num_procs": int(self.num_procs),
            "g": float(self.g),
            "latency": float(self.latency),
            "numa_delta": None if self.numa_delta is None else float(self.numa_delta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            delta = data.get("numa_delta")
            return cls(
                num_procs=int(data["num_procs"]),
                g=float(data.get("g", 1.0)),
                latency=float(data.get("latency", 5.0)),
                numa_delta=None if delta is None else float(delta),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MachineError(f"malformed machine spec: {exc}") from exc
