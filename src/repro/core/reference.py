"""Pure-Python reference implementations of the DAG kernels.

These are the seed (pre-CSR) list-of-lists implementations, kept verbatim in
spirit so that

* the vectorized CSR kernels in :mod:`repro.core.csr` can be
  differential-tested against a straightforward, obviously-correct baseline
  (``tests/test_csr_kernels.py``), and
* ``benchmarks/bench_dag_kernels.py`` can measure the speedup of the CSR
  backend against the historical implementation on identical inputs.

All functions operate on plain successor/predecessor adjacency lists
(``list[list[int]]``) plus optional weight sequences; nothing here imports
the CSR container, so the two sides of every differential test share no
code.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .exceptions import CycleError

__all__ = [
    "adjacency_from_edges",
    "topological_order_ref",
    "levels_ref",
    "bottom_levels_ref",
    "descendants_ref",
    "ancestors_ref",
    "induced_edges_ref",
]


def adjacency_from_edges(
    num_nodes: int, edges: Sequence[tuple[int, int]]
) -> tuple[list[list[int]], list[list[int]]]:
    """Successor and predecessor lists (edge insertion order) from an edge list."""
    succ: list[list[int]] = [[] for _ in range(num_nodes)]
    pred: list[list[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        succ[u].append(v)
        pred[v].append(u)
    return succ, pred


def topological_order_ref(
    succ: list[list[int]], pred: list[list[int]]
) -> list[int]:
    """Kahn's algorithm with a FIFO queue (the seed implementation)."""
    num_nodes = len(succ)
    indegree = [len(p) for p in pred]
    queue = deque(v for v in range(num_nodes) if indegree[v] == 0)
    order: list[int] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in succ[v]:
            indegree[w] -= 1
            if indegree[w] == 0:
                queue.append(w)
    if len(order) != num_nodes:
        raise CycleError("graph contains a directed cycle")
    return order


def levels_ref(succ: list[list[int]], pred: list[list[int]]) -> list[int]:
    """Top level per node by relaxation over a topological order."""
    levels = [0] * len(succ)
    for v in topological_order_ref(succ, pred):
        for w in succ[v]:
            if levels[v] + 1 > levels[w]:
                levels[w] = levels[v] + 1
    return levels


def bottom_levels_ref(
    succ: list[list[int]], pred: list[list[int]], work: Sequence[float]
) -> list[float]:
    """Bottom level per node by relaxation over a reversed topological order."""
    bl = [float(w) for w in work]
    for v in reversed(topological_order_ref(succ, pred)):
        if succ[v]:
            bl[v] = float(work[v]) + max(bl[u] for u in succ[v])
    return bl


def _reach(adjacency: list[list[int]], start: int) -> set[int]:
    seen: set[int] = set()
    stack = list(adjacency[start])
    while stack:
        u = stack.pop()
        if u not in seen:
            seen.add(u)
            stack.extend(adjacency[u])
    return seen


def descendants_ref(succ: list[list[int]], v: int) -> set[int]:
    """All nodes reachable from ``v`` (excluding ``v``), DFS over lists."""
    return _reach(succ, v)


def ancestors_ref(pred: list[list[int]], v: int) -> set[int]:
    """All nodes that can reach ``v`` (excluding ``v``), DFS over lists."""
    return _reach(pred, v)


def induced_edges_ref(
    succ: list[list[int]], nodes: Sequence[int]
) -> list[tuple[int, int]]:
    """Relabelled edges of the induced subgraph, in seed iteration order."""
    index = {v: i for i, v in enumerate(nodes)}
    edges: list[tuple[int, int]] = []
    for v in nodes:
        for w in succ[v]:
            if w in index:
                edges.append((index[v], index[w]))
    return edges
