"""Pure-Python reference implementations of the DAG kernels.

These are the seed (pre-CSR) list-of-lists implementations, kept verbatim in
spirit so that

* the vectorized CSR kernels in :mod:`repro.core.csr` can be
  differential-tested against a straightforward, obviously-correct baseline
  (``tests/test_csr_kernels.py``), and
* ``benchmarks/bench_dag_kernels.py`` can measure the speedup of the CSR
  backend against the historical implementation on identical inputs.

All functions operate on plain successor/predecessor adjacency lists
(``list[list[int]]``) plus optional weight sequences; nothing here imports
the CSR container, so the two sides of every differential test share no
code.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .exceptions import CycleError

__all__ = [
    "adjacency_from_edges",
    "topological_order_ref",
    "levels_ref",
    "bottom_levels_ref",
    "descendants_ref",
    "ancestors_ref",
    "induced_edges_ref",
    "schedule_violations_ref",
    "classical_to_bsp_ref",
]


def adjacency_from_edges(
    num_nodes: int, edges: Sequence[tuple[int, int]]
) -> tuple[list[list[int]], list[list[int]]]:
    """Successor and predecessor lists (edge insertion order) from an edge list."""
    succ: list[list[int]] = [[] for _ in range(num_nodes)]
    pred: list[list[int]] = [[] for _ in range(num_nodes)]
    for u, v in edges:
        succ[u].append(v)
        pred[v].append(u)
    return succ, pred


def topological_order_ref(
    succ: list[list[int]], pred: list[list[int]]
) -> list[int]:
    """Kahn's algorithm with a FIFO queue (the seed implementation)."""
    num_nodes = len(succ)
    indegree = [len(p) for p in pred]
    queue = deque(v for v in range(num_nodes) if indegree[v] == 0)
    order: list[int] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in succ[v]:
            indegree[w] -= 1
            if indegree[w] == 0:
                queue.append(w)
    if len(order) != num_nodes:
        raise CycleError("graph contains a directed cycle")
    return order


def levels_ref(succ: list[list[int]], pred: list[list[int]]) -> list[int]:
    """Top level per node by relaxation over a topological order."""
    levels = [0] * len(succ)
    for v in topological_order_ref(succ, pred):
        for w in succ[v]:
            if levels[v] + 1 > levels[w]:
                levels[w] = levels[v] + 1
    return levels


def bottom_levels_ref(
    succ: list[list[int]], pred: list[list[int]], work: Sequence[float]
) -> list[float]:
    """Bottom level per node by relaxation over a reversed topological order."""
    bl = [float(w) for w in work]
    for v in reversed(topological_order_ref(succ, pred)):
        if succ[v]:
            bl[v] = float(work[v]) + max(bl[u] for u in succ[v])
    return bl


def _reach(adjacency: list[list[int]], start: int) -> set[int]:
    seen: set[int] = set()
    stack = list(adjacency[start])
    while stack:
        u = stack.pop()
        if u not in seen:
            seen.add(u)
            stack.extend(adjacency[u])
    return seen


def descendants_ref(succ: list[list[int]], v: int) -> set[int]:
    """All nodes reachable from ``v`` (excluding ``v``), DFS over lists."""
    return _reach(succ, v)


def ancestors_ref(pred: list[list[int]], v: int) -> set[int]:
    """All nodes that can reach ``v`` (excluding ``v``), DFS over lists."""
    return _reach(pred, v)


def induced_edges_ref(
    succ: list[list[int]], nodes: Sequence[int]
) -> list[tuple[int, int]]:
    """Relabelled edges of the induced subgraph, in seed iteration order."""
    index = {v: i for i, v in enumerate(nodes)}
    edges: list[tuple[int, int]] = []
    for v in nodes:
        for w in succ[v]:
            if w in index:
                edges.append((index[v], index[w]))
    return edges


def _redundant_deliveries(
    num_nodes: int,
    num_procs: int,
    procs: Sequence[int],
    supersteps: Sequence[int],
    steps: Sequence,
) -> list[bool]:
    """Which comm steps re-deliver a value that is already present on the target.

    A value is present on ``(node, proc)`` from superstep ``τ(node)`` on when
    ``proc`` computes the node, and from ``s + 1`` on when some comm step
    delivers it in phase ``s``.  Step ``i`` is redundant when the earliest
    *other* presence of its ``(node, target)`` pair is no later than its own
    arrival ``sᵢ + 1``.  The rule is order independent (two identical-arrival
    deliveries flag each other), and deliberately works on the raw arrival
    times: whether each individual step is *justified* at its source is a
    separate check.
    """
    arrivals: dict[tuple[int, int], list[int]] = {}
    for step in steps:
        arrivals.setdefault((step.node, step.target), []).append(step.superstep + 1)
    flags: list[bool] = []
    for step in steps:
        key = (step.node, step.target)
        arrival = step.superstep + 1
        earliest_other: float = float("inf")
        if 0 <= step.node < num_nodes and int(procs[step.node]) == step.target:
            earliest_other = int(supersteps[step.node])
        mine = arrivals[key]
        others = sorted(mine)
        others.remove(arrival)  # drop one copy of this step's own arrival
        if others:
            earliest_other = min(earliest_other, others[0])
        flags.append(earliest_other <= arrival)
    return flags


def schedule_violations_ref(
    num_nodes: int,
    num_procs: int,
    edges: Sequence[tuple[int, int]],
    procs: Sequence[int],
    supersteps: Sequence[int],
    steps: Sequence,
    max_violations: int = 20,
) -> list[str]:
    """The seed per-edge/per-step BSP validity walker (pre-vectorization).

    Kept so the vectorized :func:`repro.core.validation.schedule_violations`
    can be differential-tested against a straightforward baseline and so
    the degenerate inputs (out-of-range processors or node ids, which the
    array encoding of the fast path cannot represent) still get bit-identical
    messages.  ``steps`` entries only need ``node``/``source``/``target``/
    ``superstep`` attributes and are formatted verbatim into the messages
    (pass the actual :class:`~repro.core.comm.CommStep` objects).

    Unlike the seed, the "communication schedule sanity" pass actually
    reports redundant deliveries (the seed built the ``arrivals`` dict and
    then did nothing with it).
    """
    steps = list(steps)
    violations: list[str] = []

    def add(message: str) -> bool:
        violations.append(message)
        return len(violations) >= max_violations

    # assignment range checks
    for v in range(num_nodes):
        if not 0 <= int(procs[v]) < num_procs:
            if add(f"node {v} assigned to invalid processor {int(procs[v])}"):
                return violations
        if int(supersteps[v]) < 0:
            if add(f"node {v} assigned to negative superstep {int(supersteps[v])}"):
                return violations

    # communication schedule sanity
    redundant = _redundant_deliveries(num_nodes, num_procs, procs, supersteps, steps)
    for step, is_redundant in zip(steps, redundant):
        if not 0 <= step.source < num_procs or not 0 <= step.target < num_procs:
            if add(f"comm step {step} references an invalid processor"):
                return violations
        if step.superstep < 0:
            if add(f"comm step {step} has a negative superstep"):
                return violations
        if step.source == step.target:
            if add(f"comm step {step} sends a value to its own processor"):
                return violations
        if is_redundant:
            if add(
                f"comm step {step} re-delivers the value of node {step.node} to "
                f"processor {step.target}, which already has it"
            ):
                return violations

    # Resolve availability with forwarding: iterate until fixpoint (the number
    # of steps is small; each pass relaxes at least one arrival or stops).
    available: dict[tuple[int, int], int] = {}
    for v in range(num_nodes):
        available[(v, int(procs[v]))] = int(supersteps[v])
    changed = True
    while changed:
        changed = False
        for step in steps:
            src_key = (step.node, step.source)
            if src_key in available and available[src_key] <= step.superstep:
                tgt_key = (step.node, step.target)
                arrival = step.superstep + 1
                if tgt_key not in available or arrival < available[tgt_key]:
                    available[tgt_key] = arrival
                    changed = True

    # every comm step must itself be justified
    for step in steps:
        src_key = (step.node, step.source)
        if src_key not in available or available[src_key] > step.superstep:
            if add(
                f"comm step {step}: value of node {step.node} is not available on "
                f"processor {step.source} by superstep {step.superstep}"
            ):
                return violations

    # precedence constraints
    for u, v in edges:
        pu, pv = int(procs[u]), int(procs[v])
        su, sv = int(supersteps[u]), int(supersteps[v])
        if pu == pv:
            if su > sv:
                if add(
                    f"edge ({u},{v}): predecessor on same processor {pu} but "
                    f"scheduled later (superstep {su} > {sv})"
                ):
                    return violations
        else:
            key = (u, pv)
            if key not in available or available[key] > sv:
                if add(
                    f"edge ({u},{v}): value of {u} never reaches processor {pv} "
                    f"before superstep {sv}"
                ):
                    return violations
    return violations


def classical_to_bsp_ref(
    pred: list[list[int]],
    procs: Sequence[int],
    start_times: Sequence[float],
) -> list[int]:
    """The seed per-predecessor superstep numbering of Appendix A.1.

    Visits nodes in order of increasing start time and opens a new superstep
    whenever a node has a cross-processor direct predecessor in the current
    one.  Returns the superstep of every node; the processor assignment is
    taken over unchanged by the conversion, so it is not recomputed here.
    """
    num_nodes = len(pred)
    supersteps = [-1] * num_nodes
    order = sorted(range(num_nodes), key=lambda v: (start_times[v], v))
    current = 0
    for v in order:
        needed = current
        for u in pred[v]:
            if procs[u] != procs[v]:
                if supersteps[u] >= needed:
                    needed = supersteps[u] + 1
            else:
                if supersteps[u] > needed:
                    needed = supersteps[u]
        if needed > current:
            current = needed
        supersteps[v] = current
    return supersteps
