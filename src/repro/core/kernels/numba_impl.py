"""Optional numba kernel backend — the loop bodies compiled with ``njit``.

Importing this module never fails: a missing or broken numba installation
leaves :func:`available` false (with the reason kept for diagnostics) and
the dispatch layer falls back to the numpy backend.  When numba is present
every loop kernel from :mod:`repro.core.kernels.loops` is wrapped with
``@njit(nogil=True, cache=True)`` — compiled to native code that releases
the GIL for the duration of a pass, which is what makes the thread executor
of :func:`repro.core.parallel.parallel_map` profitable.

Compilation is lazy (first call per signature); :func:`warmup` forces it on
tiny instances so benchmarks can keep JIT compile time out of their timed
regions.
"""

from __future__ import annotations

import time

import numpy as np

from . import loops

__all__ = [
    "available",
    "unavailable_reason",
    "version",
    "warmup",
    "hc_pass_jit",
    "hccs_pass_jit",
    "coarsen_reach_jit",
    "pk_order_jit",
    "symbolic_fill_jit",
    "symbolic_fill_quotient_jit",
]

hc_pass_jit = None
hccs_pass_jit = None
coarsen_reach_jit = None
pk_order_jit = None
symbolic_fill_jit = None
symbolic_fill_quotient_jit = None

_available = False
_reason: str | None = None
_version: str | None = None

try:
    import numba as _numba
except Exception as exc:  # pragma: no cover - depends on the environment
    _reason = f"numba import failed: {type(exc).__name__}: {exc}"
else:  # pragma: no cover - exercised only on numba installs (CI matrix leg)
    try:
        _jit = _numba.njit(nogil=True, cache=True)
        hc_pass_jit = _jit(loops.hc_pass_loops)
        hccs_pass_jit = _jit(loops.hccs_pass_loops)
        coarsen_reach_jit = _jit(loops.coarsen_reach_loops)
        pk_order_jit = _jit(loops.pk_order_loops)
        symbolic_fill_jit = _jit(loops.symbolic_fill_loops)
        symbolic_fill_quotient_jit = _jit(loops.symbolic_fill_quotient_loops)
        _version = getattr(_numba, "__version__", "unknown")
        _available = True
    except Exception as exc:
        _reason = f"numba njit wrapping failed: {type(exc).__name__}: {exc}"


def available() -> bool:
    """Whether the compiled backend can be used in this interpreter."""
    return _available


def unavailable_reason() -> str | None:
    """Why the compiled backend is unavailable (``None`` when it is)."""
    return _reason


def version() -> str | None:
    """The numba version backing the compiled kernels (``None`` if absent)."""
    return _version


def warmup() -> float:  # pragma: no cover - exercised on numba installs only
    """Force-compile every kernel on tiny instances; return seconds spent.

    Numba compiles per argument signature on first call; the adapters in the
    dispatch layer always pass int64/float64 arrays, so one tiny call per
    kernel covers the signatures the real workloads hit.  Benchmarks call
    this before their timed regions and report the returned compile time as
    volatile metadata.
    """
    if not _available:
        return 0.0
    start = time.perf_counter()
    i64 = np.int64
    # 2-node chain on 1 processor, 2 supersteps (max_accept=0: compile only)
    hc_pass_jit(
        np.array([0, 1, 1], dtype=i64),
        np.array([1], dtype=i64),
        np.array([0, 0, 1], dtype=i64),
        np.array([0], dtype=i64),
        np.ones(2, dtype=np.float64),
        np.ones(2, dtype=np.float64),
        np.zeros((1, 1), dtype=np.float64),
        1.0,
        np.zeros(2, dtype=i64),
        np.array([0, 1], dtype=i64),
        np.ones((2, 1), dtype=np.float64),
        np.zeros((2, 1), dtype=np.float64),
        np.zeros((2, 1), dtype=np.float64),
        np.ones(2, dtype=np.float64),
        np.zeros(2, dtype=np.float64),
        np.array([[1], [loops.NO_ENTRY]], dtype=i64),
        np.array([[1], [0]], dtype=i64),
        0,
        2,
        0,
        1e-9,
        np.empty((2, 3), dtype=i64),
    )
    hccs_pass_jit(
        np.zeros((1, 1), dtype=np.float64),
        np.zeros((1, 1), dtype=np.float64),
        np.zeros(1, dtype=np.float64),
        np.zeros(1, dtype=i64),
        np.zeros(1, dtype=i64),
        np.zeros(1, dtype=i64),
        np.zeros(1, dtype=i64),
        np.zeros(1, dtype=i64),
        np.zeros(1, dtype=i64),
        np.zeros(1, dtype=np.float64),
        0,
        1,
        0,
        1e-9,
        np.empty((1, 2), dtype=i64),
    )
    coarsen_reach_jit(
        np.array([1], dtype=i64),
        np.array([0, 1], dtype=i64),
        np.array([1, 0], dtype=i64),
        0,
        1,
        -1,
        np.zeros(2, dtype=i64),
        np.zeros(2, dtype=i64),
        1,
    )
    # 2-node edge 0->1: op=0 probe, then op=1 with an inverted order so the
    # region-reorder branch (np.sort/np.argsort) compiles too
    pk_order_jit(
        np.array([1], dtype=i64),
        np.array([0, 1], dtype=i64),
        np.array([1, 0], dtype=i64),
        np.array([0], dtype=i64),
        np.array([1, 0], dtype=i64),
        np.array([0, 1], dtype=i64),
        np.array([0, 1], dtype=i64),
        0,
        0,
        1,
        np.zeros(2, dtype=i64),
        np.zeros(2, dtype=i64),
        np.zeros(2, dtype=i64),
        np.zeros(2, dtype=i64),
        1,
    )
    pk_order_jit(
        np.array([1], dtype=i64),
        np.array([0, 1], dtype=i64),
        np.array([1, 0], dtype=i64),
        np.array([0], dtype=i64),
        np.array([1, 0], dtype=i64),
        np.array([0, 1], dtype=i64),
        np.array([1, 0], dtype=i64),
        1,
        0,
        1,
        np.zeros(2, dtype=i64),
        np.zeros(2, dtype=i64),
        np.zeros(2, dtype=i64),
        np.zeros(2, dtype=i64),
        2,
    )
    symbolic_fill_jit(
        np.array([0, 1], dtype=i64),
        np.array([0], dtype=i64),
        1,
    )
    symbolic_fill_quotient_jit(
        np.array([0, 1], dtype=i64),
        np.array([0], dtype=i64),
        1,
    )
    return time.perf_counter() - start
