"""The numpy kernel backend — today's vectorized hot loops, extracted.

Each function here is the behavior-identical numpy formulation of one hot
loop, lifted out of its original module so the dispatch layer can swap it
for the compiled backend.  The heavy lifting still lives where it always
did (e.g. :meth:`LazyCostTracker.candidate_deltas`); these wrappers own the
*pass drivers* — the per-node / per-window Python orchestration that the
numba backend replaces with one compiled loop.
"""

from __future__ import annotations

import numpy as np

from .loops import symbolic_fill_loops
from .state import HccsState

__all__ = [
    "hc_pass_numpy",
    "hccs_front_mask",
    "hccs_front_numpy",
    "hccs_pass_numpy",
    "coarsen_reach_numpy",
    "pk_order_numpy",
    "symbolic_fill_numpy",
    "symbolic_fill_quotient_numpy",
]

_EPS_DEFAULT = 1e-9


def hc_pass_numpy(tracker, start, stop, max_accept, eps, budget=None):
    """One HC pass over nodes ``[start, stop)`` via the batched tracker.

    Evaluates every node's ``3 x P`` candidate moves with
    ``tracker.candidate_deltas`` (read-only) and applies the first improving
    candidate through ``tracker.apply_move`` — exactly the pre-dispatch
    climb body.  Returns ``(accepted, moves)``.
    """
    P = tracker.machine.num_procs
    accepted = 0
    moves: list[tuple[int, int, int]] = []
    for v in range(start, stop):
        if max_accept >= 0 and accepted >= max_accept:
            break
        if budget is not None and budget.expired():
            break
        deltas, valid = tracker.candidate_deltas(v)
        hit = valid & (deltas < -eps)
        if not hit.any():
            continue
        # first improving candidate in the reference scan order:
        # steps (s-1, s, s+1) major, processors 0..P-1 minor
        flat = int(np.argmax(hit))
        step_offset, new_proc = divmod(flat, P)
        new_step = int(tracker.supersteps[v]) - 1 + step_offset
        tracker.apply_move(v, new_proc, new_step)
        accepted += 1
        moves.append((v, new_proc, new_step))
    return accepted, moves


def hccs_pass_numpy(state: HccsState, start, stop, max_accept, eps, budget=None):
    """One HCcs pass over ``state.movable[start:stop]`` (numpy row ops).

    The pre-dispatch window walk: one shared removal row scan per window,
    candidate phases scored against the maintained row maxima in one
    vectorized expression.  Returns ``(accepted, moves)``.
    """
    send = state.send
    recv = state.recv
    comm_max = state.comm_max
    choices = state.choices
    accepted = 0
    moves: list[tuple[int, int]] = []
    for mi in range(start, stop):
        if max_accept >= 0 and accepted >= max_accept:
            break
        if budget is not None and budget.expired():
            break
        index = int(state.movable[mi])
        current = int(choices[index])
        lo = int(state.earliest[index])
        hi = int(state.latest[index])
        volume = float(state.volumes[index])
        p1 = int(state.srcs[index])
        p2 = int(state.tgts[index])

        # removing the transfer from its current phase: one row scan,
        # shared by every candidate phase of the window
        send_row = send[current].copy()
        send_row[p1] -= volume
        recv_row = recv[current].copy()
        recv_row[p2] -= volume
        removal = max(float(send_row.max()), float(recv_row.max())) - comm_max[current]

        # adding it to a candidate phase only raises that row, so the
        # new maximum needs no row scan at all
        window_max = comm_max[lo : hi + 1]
        raised = np.maximum(
            window_max,
            np.maximum(send[lo : hi + 1, p1] + volume, recv[lo : hi + 1, p2] + volume),
        )
        deltas = ((raised - window_max) + removal).tolist()

        best_phase = current
        best_delta = 0.0
        for offset, delta in enumerate(deltas):
            candidate = lo + offset
            if candidate == current:
                continue
            if delta < best_delta - eps:
                best_delta = delta
                best_phase = candidate
        if best_phase != current:
            send[current, p1] -= volume
            recv[current, p2] -= volume
            send[best_phase, p1] += volume
            recv[best_phase, p2] += volume
            for s in (current, best_phase):
                comm_max[s] = float(np.maximum(send[s], recv[s]).max())
            choices[index] = best_phase
            accepted += 1
            moves.append((index, best_phase))
    return accepted, moves


def coarsen_reach_numpy(graph, u, v, budget):
    """Alternative-path DFS over the flat adjacency pools.

    Python-native mirror of :func:`repro.core.kernels.loops.coarsen_reach_loops`
    — identical visit order and budget accounting (so every backend makes
    the same contract/skip decisions), but with list/set containers, which
    beat per-element numpy indexing by a wide margin when the loop body is
    not compiled.
    """
    succ_pool = graph.succ_pool
    succ_start = graph.succ_start
    succ_len = graph.succ_len
    base = int(succ_start[u])
    stack = [w for w in succ_pool[base : base + int(succ_len[u])].tolist() if w != v]
    seen = set(stack)
    remaining = -1 if budget is None else budget
    while stack:
        x = stack.pop()
        if remaining >= 0:
            remaining -= 1
            if remaining < 0:
                return -1
        xb = int(succ_start[x])
        for w in succ_pool[xb : xb + int(succ_len[x])].tolist():
            if w == v:
                return 1
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return 0


def pk_order_numpy(graph, op, u, v):
    """Pearce–Kelly order maintenance over the flat adjacency pools.

    Python-native mirror of :func:`repro.core.kernels.loops.pk_order_loops`.
    The discovered regions are *traversal-order independent* (each is the
    closure of a seed under one bounded step relation), and the reassignment
    sorts by the old positions, which are distinct — so every backend leaves
    ``graph.order`` in the bit-identical state.
    """
    succ_pool = graph.succ_pool
    succ_start = graph.succ_start
    succ_len = graph.succ_len
    order = graph.order
    if op == 0:
        limit = int(order[v])
        base = int(succ_start[u])
        stack = [
            w
            for w in succ_pool[base : base + int(succ_len[u])].tolist()
            if w != v and order[w] < limit
        ]
        seen = set(stack)
        while stack:
            x = stack.pop()
            xb = int(succ_start[x])
            for w in succ_pool[xb : xb + int(succ_len[x])].tolist():
                if w == v:
                    return 1
                if order[w] < limit and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return 0

    lb = int(order[v])
    ub = int(order[u])
    if ub < lb:
        return 0
    forward = [v]
    seen_f = {v}
    stack = [v]
    while stack:
        x = stack.pop()
        xb = int(succ_start[x])
        for w in succ_pool[xb : xb + int(succ_len[x])].tolist():
            if w == u:
                return 1
            if order[w] <= ub and w not in seen_f:
                seen_f.add(w)
                forward.append(w)
                stack.append(w)
    pred_pool = graph.pred_pool
    pred_start = graph.pred_start
    pred_len = graph.pred_len
    backward = [u]
    seen_b = {u}
    stack = [u]
    while stack:
        x = stack.pop()
        xb = int(pred_start[x])
        for w in pred_pool[xb : xb + int(pred_len[x])].tolist():
            if order[w] >= lb and w not in seen_b:
                seen_b.add(w)
                backward.append(w)
                stack.append(w)
    backward.sort(key=lambda node: order[node])
    forward.sort(key=lambda node: order[node])
    region = backward + forward
    positions = sorted(int(order[node]) for node in region)
    for node, pos in zip(region, positions):
        order[node] = pos
    return 0


def hccs_front_mask(lo, hi, num_rows):
    """Scan-order greedy maximal set of row-disjoint HCcs windows.

    One vectorized conflict scan: window ``k`` (interval ``[lo[k], hi[k]]``)
    joins the front iff no earlier-scanned window's interval intersects it —
    *earlier-scanned*, not *earlier-accepted*, so a deferred window still
    claims its rows and the serial equivalence argument below holds.  Each
    phase row remembers the first window covering it (``np.minimum.at``);
    a window is kept iff it is its own interval-wide minimum.
    """
    k = lo.shape[0]
    widths = hi - lo + 1
    offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(widths, out=offsets[1:])
    total = int(offsets[-1])
    rows = np.repeat(lo, widths) + (
        np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], widths)
    )
    scan = np.repeat(np.arange(k, dtype=np.int64), widths)
    first = np.full(num_rows, k, dtype=np.int64)
    np.minimum.at(first, rows, scan)
    return np.minimum.reduceat(first[rows], offsets[:-1]) == np.arange(
        k, dtype=np.int64
    )


def hccs_front_numpy(state: HccsState, front, eps):
    """Evaluate and apply one row-disjoint window front in a batched sweep.

    ``front`` holds window indices whose feasible phase intervals are
    pairwise disjoint, so every window sees the same row maxima a serial
    walk would and the accepted moves scatter without conflicts.  The
    first-exact-argmin phase choice equals the serial eps-guarded ascending
    scan under the exact (integer/dyadic) weight regime, where distinct
    deltas differ by at least one volume unit >> eps.  Returns
    ``(accepted, moves)`` with moves in front order.
    """
    send = state.send
    recv = state.recv
    comm_max = state.comm_max
    choices = state.choices
    k = front.shape[0]
    cur = choices[front]
    lo = state.earliest[front]
    hi = state.latest[front]
    vol = state.volumes[front]
    p1 = state.srcs[front]
    p2 = state.tgts[front]

    # removal terms: one gathered row block, the moving volume subtracted
    send_rows = send[cur]
    send_rows[np.arange(k), p1] -= vol
    recv_rows = recv[cur]
    recv_rows[np.arange(k), p2] -= vol
    removal = np.maximum(send_rows.max(axis=1), recv_rows.max(axis=1)) - comm_max[cur]

    # candidate deltas over the concatenated feasible intervals
    widths = hi - lo + 1
    offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(widths, out=offsets[1:])
    total = int(offsets[-1])
    rep = np.repeat(np.arange(k, dtype=np.int64), widths)
    phases = np.repeat(lo, widths) + (
        np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], widths)
    )
    raised = np.maximum(
        comm_max[phases],
        np.maximum(send[phases, p1[rep]] + vol[rep], recv[phases, p2[rep]] + vol[rep]),
    )
    deltas = (raised - comm_max[phases]) + removal[rep]
    deltas[phases == cur[rep]] = np.inf  # staying put is not a move
    best = np.minimum.reduceat(deltas, offsets[:-1])
    accept = best < -eps
    if not accept.any():
        return 0, []
    # first phase attaining the window minimum (== the serial scan's pick)
    hit_pos = np.where(
        deltas == best[rep], np.arange(total, dtype=np.int64), total
    )
    firsts = np.minimum.reduceat(hit_pos, offsets[:-1])

    ai = np.flatnonzero(accept)
    new_phase = phases[firsts[ai]]
    idx = front[ai]
    cw = cur[ai]
    vw = vol[ai]
    p1w = p1[ai]
    p2w = p2[ai]
    # intervals are disjoint across the front, hence so are the touched
    # rows: the scatter below never collides
    send[cw, p1w] -= vw
    recv[cw, p2w] -= vw
    send[new_phase, p1w] += vw
    recv[new_phase, p2w] += vw
    touched = np.concatenate((cw, new_phase))
    comm_max[touched] = np.maximum(send[touched], recv[touched]).max(axis=1)
    choices[idx] = new_phase
    moves = list(zip(idx.tolist(), new_phase.tolist()))
    return len(moves), moves


def symbolic_fill_numpy(indptr, indices, n):
    """Per-column union pass of the symbolic factorisation (numpy sets).

    The pre-dispatch loop: column ``j``'s structure is the ``np.unique`` of
    ``A``'s below-diagonal column entries and the children structures minus
    their pivot rows.  Returns the ragged structures as
    ``(out_indptr, out_indices, parents)``.
    """
    parents = np.full(n, -1, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(n)]
    structures: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for j in range(n):
        row = indices[indptr[j] : indptr[j + 1]]
        pieces = [row[row > j]]
        # a child's structure starts at its pivot row == j; drop that entry
        pieces.extend(structures[c][1:] for c in children[j])
        struct = (
            np.unique(np.concatenate(pieces))
            if len(pieces) > 1
            else pieces[0].astype(np.int64)
        )
        structures[j] = struct
        if struct.size:
            parent = int(struct[0])
            parents[j] = parent
            children[parent].append(j)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    if n:
        np.cumsum([s.size for s in structures], out=out_indptr[1:])
    out_indices = (
        np.concatenate(structures) if n else np.empty(0, dtype=np.int64)
    ).astype(np.int64, copy=False)
    return out_indptr, out_indices, parents


def symbolic_fill_quotient_numpy(indptr, indices, n):
    """Row-merge-tree symbolic factorisation (pure-Python list walks).

    Same algorithm as :func:`repro.core.kernels.loops.
    symbolic_fill_quotient_loops` — Liu's path-compressed elimination tree
    followed by marked row-subtree traversals — with the interpreter-side
    constant factor squeezed out: the strictly-lower entries are extracted
    once with vectorised numpy (no per-entry triangle test in the loops),
    the walks chase plain Python lists (severalfold faster than ndarray
    scalar indexing), and the count/fill double traversal collapses into a
    single pass appending to per-column lists — rows are visited in
    increasing order, so each column comes out sorted and duplicate-free.
    Output is bit-identical to every other ``symbolic_fill`` backend.
    """
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    lower = indices < rows
    li = rows[lower].tolist()
    lj = np.ascontiguousarray(indices)[lower].tolist()
    parents = [-1] * n
    ancestor = [-1] * n
    # pass 1 — Liu's etree: entry (col, i) with i < col re-points i's
    # compressed ancestor chain at col; the first unset link is the parent
    for col, i in zip(li, lj):
        while True:
            nxt = ancestor[i]
            if nxt == -1:
                ancestor[i] = col
                parents[i] = col
                break
            if nxt == col:
                break
            ancestor[i] = col
            i = nxt
    # pass 2 — row subtrees: row i contributes i to column j, parent(j), ...
    # up to (excluded) i itself; marks cut every walk at the merge point
    counts = [0] * n
    mark = [-1] * n
    previous = -1
    for i, j in zip(li, lj):
        if i != previous:
            mark[i] = i
            previous = i
        while mark[j] != i:
            counts[j] += 1
            mark[j] = i
            j = parents[j]
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    if n:
        np.cumsum(counts, out=out_indptr[1:])
    # pass 3 — the same walks, now scattering into the flat output pool;
    # rows arrive in increasing order, so every column comes out sorted
    out = [0] * int(out_indptr[n])
    cursor = out_indptr[:n].tolist()
    mark = [-1] * n
    previous = -1
    for i, j in zip(li, lj):
        if i != previous:
            mark[i] = i
            previous = i
        while mark[j] != i:
            c = cursor[j]
            out[c] = i
            cursor[j] = c + 1
            mark[j] = i
            j = parents[j]
    out_indices = np.asarray(out, dtype=np.int64)
    return out_indptr, out_indices, np.asarray(parents, dtype=np.int64)


def _ignore():  # pragma: no cover - keeps the shared-code import explicit
    return symbolic_fill_loops
