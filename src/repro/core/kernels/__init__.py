"""Kernel-dispatch layer for the refinement/coarsening/symbolic hot loops.

Two interchangeable backends implement the hot loops of the pipeline —
the HC refinement pass, the HCcs window walk (serial and batched-front
flavours), the coarsening acyclicity probe and its Pearce–Kelly
dynamic-order replacement, and the two symbolic factorisations.  The
:data:`KERNELS` registry lists every dispatched kernel with a one-line
summary; the ``repro kernels`` CLI prints it, so a new kernel only needs
the :func:`_dispatched` decorator to show up everywhere:

* ``numpy`` — the vectorized reference implementation, extracted unchanged
  from the scheduler/dagdb modules.  Always available.
* ``numba`` — the same loops compiled with ``@njit(nogil=True, cache=True)``
  (:mod:`repro.core.kernels.numba_impl`).  Selected automatically when a
  working numba is importable; a missing or broken install silently falls
  back to ``numpy``.

The ``REPRO_KERNEL_BACKEND`` environment variable overrides the automatic
choice (``numpy`` or ``numba``; forcing ``numba`` without a working install
raises :class:`KernelBackendError` instead of silently degrading, so CI
matrix legs cannot pass vacuously).  The undocumented value ``loops`` runs
the *uncompiled* loop bodies of :mod:`repro.core.kernels.loops` — the exact
code numba compiles — which is how the backend-parity suite pins the
compiled backend's semantics on machines without numba.

Both backends are pinned to the retained seed references by the existing
differential suites; on the repository's integer/dyadic-weight instances
they are bit-identical, not merely equal within tolerance.
"""

from __future__ import annotations

import os

import numpy as np

from . import loops, numba_impl, numpy_impl
from .state import HccsState

__all__ = [
    "ENV_VAR",
    "KERNELS",
    "KernelBackendError",
    "HccsState",
    "available_backends",
    "backend_info",
    "get_backend",
    "warmup",
    "hc_pass",
    "hccs_pass",
    "hccs_pass_fronts",
    "coarsen_reach",
    "pk_order",
    "symbolic_fill",
    "symbolic_fill_quotient",
]

#: Environment knob selecting the kernel backend.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Public backend names ("loops" additionally accepted for parity testing).
_PUBLIC = ("numpy", "numba")
_NAMES = ("numpy", "numba", "loops")

#: Node/window chunk between budget checks when a wall-clock budget is
#: active: large enough to amortise the kernel-call overhead, small enough
#: that an expired budget stops a pass promptly.
_BUDGET_CHUNK = 2048

_EPS = 1e-9


class KernelBackendError(RuntimeError):
    """An explicitly requested kernel backend cannot be honoured."""


def get_backend() -> str:
    """The active backend name, honouring ``REPRO_KERNEL_BACKEND``.

    Without the override: ``numba`` when a working install is importable,
    else ``numpy``.  An unknown forced name, or forcing ``numba`` where it
    is unavailable, raises :class:`KernelBackendError` with the reason.
    """
    forced = os.environ.get(ENV_VAR)
    if forced is not None and forced.strip():
        name = forced.strip().lower()
        if name not in _NAMES:
            raise KernelBackendError(
                f"unknown kernel backend {forced!r} (from {ENV_VAR}): "
                f"expected one of {', '.join(repr(n) for n in _PUBLIC)}"
            )
        if name == "numba" and not numba_impl.available():
            raise KernelBackendError(
                f"{ENV_VAR}=numba was forced but the numba backend is "
                f"unavailable ({numba_impl.unavailable_reason()}); install "
                f"the 'speed' extra (pip install repro-bsp-scheduling[speed]) or "
                f"unset {ENV_VAR}"
            )
        return name
    return "numba" if numba_impl.available() else "numpy"


def available_backends() -> tuple[str, ...]:
    """The backend names usable in this interpreter (public names only)."""
    return _PUBLIC if numba_impl.available() else ("numpy",)


def backend_info() -> dict:
    """Diagnostic snapshot for the ``repro kernels`` CLI subcommand."""
    forced = os.environ.get(ENV_VAR)
    try:
        active: str | None = get_backend()
        error = None
    except KernelBackendError as exc:
        active = None
        error = str(exc)
    return {
        "active": active,
        "forced": forced,
        "error": error,
        "available": list(available_backends()),
        "numba_available": numba_impl.available(),
        "numba_version": numba_impl.version(),
        "numba_unavailable_reason": numba_impl.unavailable_reason(),
    }


def warmup() -> float:
    """Pre-compile the active backend's kernels; returns seconds spent.

    A no-op (0.0) unless the numba backend is active — the numpy and loops
    backends have nothing to compile.
    """
    if get_backend() == "numba":
        return numba_impl.warmup()
    return 0.0


# ---------------------------------------------------------------------- #
# dispatched kernels
# ---------------------------------------------------------------------- #
#: Registry of every dispatched kernel: name -> one-line summary.  Filled
#: by the ``_dispatched`` decorator, so the ``repro kernels`` listing (and
#: anything else enumerating the kernel surface) can never fall behind.
KERNELS: dict[str, str] = {}


def _dispatched(fn):
    """Register a dispatch function in :data:`KERNELS` (summary = doc line 1)."""
    KERNELS[fn.__name__] = (fn.__doc__ or "").strip().splitlines()[0].rstrip(".")
    return fn


def _loop_fn(numba_name: str, loops_fn):
    """The compiled kernel for the active backend ('numba' vs 'loops')."""
    backend = get_backend()
    if backend == "numba":
        return getattr(numba_impl, numba_name)
    return loops_fn


@_dispatched
def hc_pass(tracker, start, stop, max_accept=-1, eps=_EPS, budget=None):
    """One HC refinement pass over nodes ``[start, stop)`` of a tracker.

    Dispatches to the active backend; returns ``(accepted, moves)`` where
    ``moves`` lists the accepted ``(node, new_proc, new_step)`` triples in
    acceptance order.  ``max_accept < 0`` (or ``None``) means unlimited; a
    wall-clock ``budget`` is checked per node (numpy backend) or between
    node chunks (compiled backends — one kernel call cannot observe the
    clock mid-flight).
    """
    if max_accept is None:
        max_accept = -1
    if get_backend() == "numpy":
        return numpy_impl.hc_pass_numpy(tracker, start, stop, max_accept, eps, budget)
    fn = _loop_fn("hc_pass_jit", loops.hc_pass_loops)
    dag = tracker.dag
    machine = tracker.machine
    timed = budget is not None and budget.seconds is not None
    chunk = _BUDGET_CHUNK if timed else max(stop - start, 1)
    accepted = 0
    moves: list[tuple[int, int, int]] = []
    pos = start
    while pos < stop:
        if budget is not None and budget.expired():
            break
        cap = -1 if max_accept < 0 else max_accept - accepted
        if max_accept >= 0 and cap <= 0:
            break
        end = min(pos + chunk, stop)
        moves_out = np.empty((max(end - pos, 1), 3), dtype=np.int64)
        got = fn(
            dag.succ_indptr,
            dag.succ_indices,
            dag.pred_indptr,
            dag.pred_indices,
            dag.work_weights,
            dag.comm_weights,
            machine.numa,
            float(machine.g),
            tracker.procs,
            tracker.supersteps,
            tracker.work,
            tracker.send,
            tracker.recv,
            tracker._work_max,
            tracker._comm_max,
            tracker.need_min,
            tracker.need_cnt,
            pos,
            end,
            cap,
            eps,
            moves_out,
        )
        for k in range(got):
            moves.append(
                (int(moves_out[k, 0]), int(moves_out[k, 1]), int(moves_out[k, 2]))
            )
        accepted += int(got)
        pos = end
    return accepted, moves


@_dispatched
def hccs_pass(state: HccsState, start, stop, max_accept=-1, eps=_EPS, budget=None):
    """One HCcs pass over ``state.movable[start:stop]``.

    Returns ``(accepted, moves)`` with the accepted ``(window_index,
    new_phase)`` pairs in acceptance order; budget/cap semantics as in
    :func:`hc_pass`.
    """
    if max_accept is None:
        max_accept = -1
    if get_backend() == "numpy":
        return numpy_impl.hccs_pass_numpy(state, start, stop, max_accept, eps, budget)
    fn = _loop_fn("hccs_pass_jit", loops.hccs_pass_loops)
    timed = budget is not None and budget.seconds is not None
    chunk = _BUDGET_CHUNK if timed else max(stop - start, 1)
    accepted = 0
    moves: list[tuple[int, int]] = []
    pos = start
    while pos < stop:
        if budget is not None and budget.expired():
            break
        cap = -1 if max_accept < 0 else max_accept - accepted
        if max_accept >= 0 and cap <= 0:
            break
        end = min(pos + chunk, stop)
        moves_out = np.empty((max(end - pos, 1), 2), dtype=np.int64)
        got = fn(
            state.send,
            state.recv,
            state.comm_max,
            state.choices,
            state.movable,
            state.srcs,
            state.tgts,
            state.earliest,
            state.latest,
            state.volumes,
            pos,
            end,
            cap,
            eps,
            moves_out,
        )
        for k in range(got):
            moves.append((int(moves_out[k, 0]), int(moves_out[k, 1])))
        accepted += int(got)
        pos = end
    return accepted, moves


@_dispatched
def coarsen_reach(graph, u, v, budget=None):
    """Alternative-path probe for the coarsener's acyclicity check.

    ``graph`` is a flat-adjacency working graph (``succ_pool``/``succ_start``
    /``succ_len`` plus reusable DFS scratch).  Returns ``1`` when another
    ``u -> v`` route exists (not contractable), ``0`` when none does, and
    ``-1`` when the node ``budget`` (``None`` = unlimited) runs out first.
    """
    backend = get_backend()
    if backend == "numpy":
        # Python-native mirror of the loop body (identical visit order and
        # budget accounting) — much faster than the un-jitted array DFS
        return numpy_impl.coarsen_reach_numpy(graph, u, v, budget)
    fn = (
        numba_impl.coarsen_reach_jit if backend == "numba" else loops.coarsen_reach_loops
    )
    return int(
        fn(
            graph.succ_pool,
            graph.succ_start,
            graph.succ_len,
            u,
            v,
            -1 if budget is None else budget,
            graph.dfs_stack,
            graph.dfs_seen,
            graph.next_stamp(),
        )
    )


@_dispatched
def pk_order(graph, op, u, v):
    """Pearce–Kelly dynamic topological order: contraction probe / edge insert.

    ``graph`` is a flat-adjacency working graph carrying an ``order`` array
    (node -> position; dead nodes leave permanent holes) plus the shared DFS
    scratch.  ``op == 0`` answers "does an alternative ``u -> v`` path
    exist?" for an existing edge by a DFS pruned to ``order < order[v]`` —
    exact because a valid order confines every alternative path to that
    strip.  ``op == 1`` inserts edge ``u -> v``: the affected region
    (forward from ``v``, backward from ``u``, both bounded by the violated
    position interval) is discovered and reassigned in place, touching
    ``O(affected region)`` nodes instead of the whole graph.  Returns ``1``
    for "alternative path" / "would close a cycle", else ``0``.
    """
    backend = get_backend()
    if backend == "numpy":
        return numpy_impl.pk_order_numpy(graph, op, u, v)
    fn = _loop_fn("pk_order_jit", loops.pk_order_loops)
    return int(
        fn(
            graph.succ_pool,
            graph.succ_start,
            graph.succ_len,
            graph.pred_pool,
            graph.pred_start,
            graph.pred_len,
            graph.order,
            op,
            u,
            v,
            graph.dfs_stack,
            graph.f_buf,
            graph.b_buf,
            graph.dfs_seen,
            graph.next_stamp(),
        )
    )


#: Fronts smaller than this finish the pass serially: the batched sweep's
#: fixed overhead (concatenated-interval bookkeeping or a compiled call)
#: is not worth paying for a handful of windows.
_FRONT_SERIAL_TAIL = 8

#: A front must also cover at least this fraction of the remaining windows
#: to keep batching.  When many windows contend for few traffic rows the
#: scan-order-greedy disjoint front degenerates (down to size one), and the
#: per-round conflict scan would make the pass *slower* than the serial
#: walk; falling back keeps fronts a strict no-regression optimisation.
_FRONT_MIN_FRACTION = 64


@_dispatched
def hccs_pass_fronts(state: HccsState, eps=_EPS, budget=None):
    """One HCcs pass over all movable windows in batched row-disjoint fronts.

    Repeatedly extracts the scan-order-greedy maximal set of windows with
    pairwise-disjoint feasible phase intervals (one vectorized conflict
    scan), evaluates and applies the whole front in one batched kernel
    call, and defers the conflicting windows to the next front.  A window
    only ever joins a front once every lower-scan-position window sharing
    any of its rows has been applied, so each window observes exactly the
    row state the serial walk would — under the exact (integer/dyadic)
    weight regime the accepted moves are identical to
    ``hccs_pass(state, 0, n, -1, eps)``, and they are returned in that
    serial scan order.  Returns ``(accepted, moves)``.
    """
    movable = state.movable
    n = int(movable.size)
    if n == 0:
        return 0, []
    lo_all = state.earliest[movable]
    hi_all = state.latest[movable]
    num_rows = state.send.shape[0]
    backend = get_backend()
    remaining = np.arange(n, dtype=np.int64)  # scan positions, ascending
    accepted = 0
    tagged: list[tuple[int, int, int]] = []
    while remaining.size:
        if budget is not None and budget.expired():
            break
        mask = numpy_impl.hccs_front_mask(
            lo_all[remaining], hi_all[remaining], num_rows
        )
        front_pos = remaining[mask]
        small = front_pos.size <= max(
            _FRONT_SERIAL_TAIL, remaining.size // _FRONT_MIN_FRACTION
        )
        if small and front_pos.size < remaining.size:
            # the front is too small (absolutely, or relative to the
            # remaining windows) to amortise the batching overhead: the
            # remaining suffix in scan order *is* the serial completion
            sub = HccsState(
                send=state.send,
                recv=state.recv,
                comm_max=state.comm_max,
                choices=state.choices,
                movable=movable[remaining],
                srcs=state.srcs,
                tgts=state.tgts,
                earliest=state.earliest,
                latest=state.latest,
                volumes=state.volumes,
            )
            got, pass_moves = hccs_pass(sub, 0, remaining.size, -1, eps, budget)
            pos_of = dict(zip(movable[remaining].tolist(), remaining.tolist()))
            for index, phase in pass_moves:
                tagged.append((pos_of[index], index, phase))
            accepted += got
            break
        front = movable[front_pos]
        if backend == "numpy":
            got, front_moves = numpy_impl.hccs_front_numpy(state, front, eps)
        else:
            fn = _loop_fn("hccs_pass_jit", loops.hccs_pass_loops)
            moves_out = np.empty((max(front.size, 1), 2), dtype=np.int64)
            got = int(
                fn(
                    state.send,
                    state.recv,
                    state.comm_max,
                    state.choices,
                    front,
                    state.srcs,
                    state.tgts,
                    state.earliest,
                    state.latest,
                    state.volumes,
                    0,
                    front.size,
                    -1,
                    eps,
                    moves_out,
                )
            )
            front_moves = [
                (int(moves_out[k, 0]), int(moves_out[k, 1])) for k in range(got)
            ]
        pos_of = dict(zip(front.tolist(), front_pos.tolist()))
        for index, phase in front_moves:
            tagged.append((pos_of[index], index, phase))
        accepted += int(got)
        remaining = remaining[~mask]
    tagged.sort()
    return accepted, [(index, phase) for _, index, phase in tagged]


@_dispatched
def symbolic_fill(indptr, indices, n):
    """Per-column structure union of the up-looking symbolic factorisation.

    Takes the CSR pattern of the symmetrised matrix; returns the ragged
    below-diagonal column structures of ``L`` as ``(out_indptr,
    out_indices, parents)`` with ``parents`` the elimination tree.
    """
    backend = get_backend()
    if backend == "numpy":
        return numpy_impl.symbolic_fill_numpy(indptr, indices, n)
    fn = _loop_fn("symbolic_fill_jit", loops.symbolic_fill_loops)
    return fn(
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(indices, dtype=np.int64),
        n,
    )


@_dispatched
def symbolic_fill_quotient(indptr, indices, n):
    """Row-merge-tree symbolic factorisation (quotient-graph algorithm).

    Same contract and bit-identical output as :func:`symbolic_fill`
    (sorted below-diagonal column structures of ``L`` plus the elimination
    tree), computed via Liu's path-compressed etree and marked row-subtree
    traversals instead of per-column unions — ``O(|A| · α + |L|)`` total,
    which is what makes million-column elimination DAGs constructible.
    The numpy backend runs the walks over plain Python lists
    (:func:`~repro.core.kernels.numpy_impl.symbolic_fill_quotient_numpy`);
    the compiled backend jits the identical loop body.
    """
    backend = get_backend()
    if backend == "numpy":
        return numpy_impl.symbolic_fill_quotient_numpy(indptr, indices, n)
    fn = _loop_fn("symbolic_fill_quotient_jit", loops.symbolic_fill_quotient_loops)
    return fn(
        np.ascontiguousarray(indptr, dtype=np.int64),
        np.ascontiguousarray(indices, dtype=np.int64),
        n,
    )
