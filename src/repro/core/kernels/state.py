"""Columnar state containers shared by the kernel backends."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HccsState"]


@dataclass
class HccsState:
    """Columnar HCcs window-walk state, built once and kept across passes.

    ``send``/``recv``/``comm_max``/``choices`` are mutated by the pass
    kernel; the remaining columns are the read-only window descriptors
    (sources, targets, feasible phase bounds, volumes) plus the scan order
    ``movable`` — the indices of the windows with more than one feasible
    phase, in the deterministic window order.
    """

    send: np.ndarray
    recv: np.ndarray
    comm_max: np.ndarray
    choices: np.ndarray
    movable: np.ndarray
    srcs: np.ndarray
    tgts: np.ndarray
    earliest: np.ndarray
    latest: np.ndarray
    volumes: np.ndarray
