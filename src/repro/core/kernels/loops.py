"""Loop-form kernel bodies — the source the numba backend compiles.

Every function in this module is written in the nopython subset of Python
(flat numpy arrays, scalar indexing, ``for``/``while`` loops, no Python
containers), so the exact same code object serves two purposes:

* :mod:`repro.core.kernels.numba_impl` wraps each function with
  ``@numba.njit(nogil=True, cache=True)`` — the compiled, GIL-releasing
  backend;
* without numba the functions still run as plain (slow) Python, which is
  how the backend-parity suite exercises the compiled backend's *semantics*
  on machines where numba is not installed.

Each kernel is self-contained (no helper calls) so numba never has to
resolve a cross-function global into a dispatcher.  The arithmetic mirrors
the vectorized numpy backend exactly: all floating-point quantities are
sums/maxima of products of the instance weights, so under the repository's
exact (integer/dyadic) weight regime the two backends are bit-identical —
the same contract the numpy refiners already keep with the retained seed
walkers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NO_ENTRY",
    "hc_pass_loops",
    "hccs_pass_loops",
    "coarsen_reach_loops",
    "pk_order_loops",
    "symbolic_fill_loops",
    "symbolic_fill_quotient_loops",
]

#: Sentinel for "no entry" in first-need tables (== repro.core.csr.NO_ENTRY,
#: spelled as a literal so the constant freezes cleanly into compiled code).
NO_ENTRY = 9223372036854775807


def hc_pass_loops(
    succ_indptr,
    succ_indices,
    pred_indptr,
    pred_indices,
    work_w,
    comm_w,
    numa,
    g,
    procs,
    supersteps,
    work,
    send,
    recv,
    work_max,
    comm_max,
    need_min,
    need_cnt,
    start,
    stop,
    max_accept,
    eps,
    moves_out,
):
    """One fused HC pass over the nodes ``[start, stop)``.

    For every node the ``3 x P`` candidate moves are evaluated in the
    reference scan order (steps ``s0-1, s0, s0+1`` major, processors minor)
    and the first strictly improving candidate is applied immediately —
    work/send/recv matrices, their row maxima and the incremental
    first-need table are all updated in place.  Returns the number of
    accepted moves; accepted ``(node, proc, step)`` triples are written to
    ``moves_out``.  ``max_accept < 0`` means unlimited.
    """
    S = work.shape[0]
    P = work.shape[1]
    accepted = 0

    removed0 = np.empty(P, dtype=np.float64)
    dsend = np.zeros((S, P), dtype=np.float64)
    drecv = np.zeros((S, P), dtype=np.float64)
    phase_stamp = np.zeros(S, dtype=np.int64)
    stamp = 0

    for v in range(start, stop):
        if max_accept >= 0 and accepted >= max_accept:
            break
        p0 = procs[v]
        s0 = supersteps[v]
        ps = pred_indptr[v]
        pe = pred_indptr[v + 1]
        ss = succ_indptr[v]
        se = succ_indptr[v + 1]
        d = pe - ps

        # ---- step feasibility + forced processor per candidate step ---- #
        step_ok = np.zeros(3, dtype=np.bool_)
        forced = np.full(3, -1, dtype=np.int64)
        any_valid = False
        for i in range(3):
            s = s0 - 1 + i
            if s < 0 or s >= S:
                continue
            ok = True
            f = np.int64(-1)
            for k in range(ps, pe):
                u = pred_indices[k]
                su = supersteps[u]
                if su > s:
                    ok = False
                    break
                if su == s:
                    pu = procs[u]
                    if f < 0:
                        f = pu
                    elif f != pu:
                        ok = False
                        break
            if not ok:
                continue
            for k in range(ss, se):
                t = succ_indices[k]
                st = supersteps[t]
                if st < s:
                    ok = False
                    break
                if st == s:
                    pt = procs[t]
                    if f < 0:
                        f = pt
                    elif f != pt:
                        ok = False
                        break
            if not ok:
                continue
            step_ok[i] = True
            forced[i] = f
            if i != 1 or f != p0 or f < 0:
                any_valid = True
        if not any_valid:
            continue

        # ---- work component scaffolding (row s0 minus v, top-2) -------- #
        w_v = work_w[v]
        max1 = -np.inf
        max2 = -np.inf
        arg1 = -1
        for q in range(P):
            val = work[s0, q]
            if q == p0:
                val -= w_v
            removed0[q] = val
            if val > max1:
                max2 = max1
                max1 = val
                arg1 = q
            elif val > max2:
                max2 = val
        m0 = max1  # row s0 maximum once v's work is gone

        # ---- per-predecessor first-need table with v excluded ---------- #
        has_comm = d > 0 or se > ss
        table = np.empty((d, P), dtype=np.int64)
        pred_of = np.empty(d, dtype=np.int64)
        pred_pr = np.empty(d, dtype=np.int64)
        for k in range(d):
            u = pred_indices[ps + k]
            pred_of[k] = u
            pred_pr[k] = procs[u]
            for q in range(P):
                table[k, q] = need_min[u, q]
            if table[k, p0] == s0 and need_cnt[u, p0] == 1:
                # v is the sole achiever of the minimum: rescan without it
                m = NO_ENTRY
                for t in range(succ_indptr[u], succ_indptr[u + 1]):
                    w = succ_indices[t]
                    if w != v and procs[w] == p0:
                        sw = supersteps[w]
                        if sw < m:
                            m = sw
                table[k, p0] = m

        tlist = np.empty(2 * P + 4 * d + 8, dtype=np.int64)

        # ---- candidate scan: steps major, processors minor ------------- #
        done = False
        for i in range(3):
            if done or not step_ok[i]:
                continue
            s = s0 - 1 + i
            f = forced[i]
            for q in range(P):
                if f >= 0 and q != f:
                    continue
                if i == 1 and q == p0:
                    continue

                # work delta
                if s == s0:
                    excl = max2 if q == arg1 else max1
                    nr = removed0[q] + w_v
                    dwork = (excl if excl > nr else nr) - work_max[s0]
                else:
                    rp = work[s, q] + w_v
                    dwork = (rp if rp > work_max[s] else work_max[s]) - work_max[s]
                    dwork += m0 - work_max[s0]
                delta = dwork

                tcount = 0
                if has_comm:
                    stamp += 1
                    c_v = comm_w[v]
                    # v's own transfers move source p0 -> q (phases fixed)
                    if q != p0:
                        for p in range(P):
                            fv = need_min[v, p]
                            if fv == NO_ENTRY:
                                continue
                            t = fv - 1
                            if p != p0 or p != q:
                                if phase_stamp[t] != stamp:
                                    phase_stamp[t] = stamp
                                    tlist[tcount] = t
                                    tcount += 1
                            if p != p0:
                                vol = c_v * numa[p0, p]
                                dsend[t, p0] -= vol
                                drecv[t, p] -= vol
                            if p != q:
                                vol = c_v * numa[q, p]
                                dsend[t, q] += vol
                                drecv[t, p] += vol
                    # predecessors: their first need on p0 and q may move
                    for k in range(d):
                        u = pred_of[k]
                        pu = pred_pr[k]
                        if pu != p0:
                            old = need_min[u, p0]
                            new = table[k, p0]
                            if q == p0 and s < new:
                                new = s
                            if old != new:
                                vol = comm_w[u] * numa[pu, p0]
                                if old != NO_ENTRY:
                                    t = old - 1
                                    if phase_stamp[t] != stamp:
                                        phase_stamp[t] = stamp
                                        tlist[tcount] = t
                                        tcount += 1
                                    dsend[t, pu] -= vol
                                    drecv[t, p0] -= vol
                                if new != NO_ENTRY:
                                    t = new - 1
                                    if phase_stamp[t] != stamp:
                                        phase_stamp[t] = stamp
                                        tlist[tcount] = t
                                        tcount += 1
                                    dsend[t, pu] += vol
                                    drecv[t, p0] += vol
                        if q != p0 and pu != q:
                            old = need_min[u, q]
                            new = table[k, q]
                            if s < new:
                                new = s
                            if old != new:
                                vol = comm_w[u] * numa[pu, q]
                                if old != NO_ENTRY:
                                    t = old - 1
                                    if phase_stamp[t] != stamp:
                                        phase_stamp[t] = stamp
                                        tlist[tcount] = t
                                        tcount += 1
                                    dsend[t, pu] -= vol
                                    drecv[t, q] -= vol
                                t = new - 1
                                if phase_stamp[t] != stamp:
                                    phase_stamp[t] = stamp
                                    tlist[tcount] = t
                                    tcount += 1
                                dsend[t, pu] += vol
                                drecv[t, q] += vol
                    # communication delta over the touched phase rows
                    for ti in range(tcount):
                        t = tlist[ti]
                        rm = -np.inf
                        for p in range(P):
                            a = send[t, p] + dsend[t, p]
                            b = recv[t, p] + drecv[t, p]
                            m = a if a > b else b
                            if m > rm:
                                rm = m
                        delta += g * (rm - comm_max[t])

                if delta < -eps:
                    # ---- accept: apply the diffs for real -------------- #
                    for ti in range(tcount):
                        t = tlist[ti]
                        rm = -np.inf
                        for p in range(P):
                            send[t, p] += dsend[t, p]
                            recv[t, p] += drecv[t, p]
                            dsend[t, p] = 0.0
                            drecv[t, p] = 0.0
                            a = send[t, p]
                            b = recv[t, p]
                            m = a if a > b else b
                            if m > rm:
                                rm = m
                        comm_max[t] = rm
                    work[s0, p0] -= w_v
                    work[s, q] += w_v
                    rm = -np.inf
                    for p in range(P):
                        if work[s0, p] > rm:
                            rm = work[s0, p]
                    work_max[s0] = rm
                    rm = -np.inf
                    for p in range(P):
                        if work[s, p] > rm:
                            rm = work[s, p]
                    work_max[s] = rm
                    procs[v] = q
                    supersteps[v] = s
                    # incremental first-need maintenance for the preds
                    for k in range(d):
                        u = pred_of[k]
                        if s < need_min[u, q]:
                            need_min[u, q] = s
                            need_cnt[u, q] = 1
                        elif s == need_min[u, q]:
                            need_cnt[u, q] += 1
                        if s0 == need_min[u, p0]:
                            need_cnt[u, p0] -= 1
                            if need_cnt[u, p0] == 0:
                                m = NO_ENTRY
                                c = 0
                                for t in range(succ_indptr[u], succ_indptr[u + 1]):
                                    w = succ_indices[t]
                                    if procs[w] == p0:
                                        sw = supersteps[w]
                                        if sw < m:
                                            m = sw
                                            c = 1
                                        elif sw == m:
                                            c += 1
                                need_min[u, p0] = m
                                need_cnt[u, p0] = c
                    moves_out[accepted, 0] = v
                    moves_out[accepted, 1] = q
                    moves_out[accepted, 2] = s
                    accepted += 1
                    done = True
                    break
                # ---- reject: clear the scratch rows -------------------- #
                for ti in range(tcount):
                    t = tlist[ti]
                    for p in range(P):
                        dsend[t, p] = 0.0
                        drecv[t, p] = 0.0
    return accepted


def hccs_pass_loops(
    send,
    recv,
    comm_max,
    choices,
    movable,
    srcs,
    tgts,
    earliest,
    latest,
    volumes,
    start,
    stop,
    max_accept,
    eps,
    moves_out,
):
    """One HCcs pass over the movable windows ``movable[start:stop]``.

    Every feasible phase of a window is scored against the maintained row
    maxima (adding a transfer can only raise a row); the best strictly
    improving phase wins, exactly as in the vectorized numpy path.  Accepted
    ``(window_index, new_phase)`` pairs go to ``moves_out``; returns the
    number of accepted moves.  ``max_accept < 0`` means unlimited.
    """
    P = send.shape[1]
    accepted = 0
    for mi in range(start, stop):
        if max_accept >= 0 and accepted >= max_accept:
            break
        index = movable[mi]
        current = choices[index]
        lo = earliest[index]
        hi = latest[index]
        volume = volumes[index]
        p1 = srcs[index]
        p2 = tgts[index]

        # removing the transfer from its current phase: one shared row scan
        rm = -np.inf
        for p in range(P):
            a = send[current, p]
            if p == p1:
                a -= volume
            b = recv[current, p]
            if p == p2:
                b -= volume
            m = a if a > b else b
            if m > rm:
                rm = m
        removal = rm - comm_max[current]

        best_phase = current
        best_delta = 0.0
        for candidate in range(lo, hi + 1):
            if candidate == current:
                continue
            a = send[candidate, p1] + volume
            b = recv[candidate, p2] + volume
            raised = a if a > b else b
            if raised < comm_max[candidate]:
                raised = comm_max[candidate]
            delta = (raised - comm_max[candidate]) + removal
            if delta < best_delta - eps:
                best_delta = delta
                best_phase = candidate
        if best_phase != current:
            send[current, p1] -= volume
            recv[current, p2] -= volume
            send[best_phase, p1] += volume
            recv[best_phase, p2] += volume
            for t in range(2):
                s = current if t == 0 else best_phase
                rm = -np.inf
                for p in range(P):
                    a = send[s, p]
                    b = recv[s, p]
                    m = a if a > b else b
                    if m > rm:
                        rm = m
                comm_max[s] = rm
            choices[index] = best_phase
            moves_out[accepted, 0] = index
            moves_out[accepted, 1] = best_phase
            accepted += 1
    return accepted


def coarsen_reach_loops(
    succ_pool,
    succ_start,
    succ_len,
    u,
    v,
    budget,
    stack,
    seen,
    stamp,
):
    """Alternative-path probe for the contraction acyclicity check.

    DFS over the descendants of ``u`` (entered through every successor
    except ``v``) looking for another route to ``v``.  Returns ``1`` when
    one exists (the edge is *not* contractable), ``0`` when none does, and
    ``-1`` when the ``budget`` (max expanded nodes; ``< 0`` = unlimited)
    runs out before the answer is known.  ``seen`` is a stamp array and
    ``stack`` a preallocated scratch; both are reused across calls.
    """
    top = 0
    base = succ_start[u]
    for k in range(succ_len[u]):
        w = succ_pool[base + k]
        if w != v:
            stack[top] = w
            top += 1
            seen[w] = stamp
    remaining = budget
    while top > 0:
        top -= 1
        x = stack[top]
        if remaining >= 0:
            remaining -= 1
            if remaining < 0:
                return -1
        xb = succ_start[x]
        for k in range(succ_len[x]):
            w = succ_pool[xb + k]
            if w == v:
                return 1
            if seen[w] != stamp:
                seen[w] = stamp
                stack[top] = w
                top += 1
    return 0


def pk_order_loops(
    succ_pool,
    succ_start,
    succ_len,
    pred_pool,
    pred_start,
    pred_len,
    order,
    op,
    u,
    v,
    stack,
    f_buf,
    b_buf,
    visited,
    stamp,
):
    """Pearce–Kelly dynamic topological order over pooled adjacency rows.

    ``order`` maps node -> position; positions of dead nodes are permanent
    holes (only relative order matters).  Two operations share the scratch
    buffers (``visited`` uses ``+stamp`` marks forward and ``-stamp``
    backward, so the array can be shared with ``coarsen_reach``):

    ``op == 0`` — contraction probe for an existing edge ``(u, v)``: DFS
    from ``u``'s other successors expanding only nodes with
    ``order < order[v]``.  Because the order is valid, every intermediate
    of an alternative ``u -> v`` path lies strictly inside that bound, so
    the pruned search is exact.  Returns ``1`` when an alternative path
    exists (not contractable), else ``0``.

    ``op == 1`` — insert edge ``u -> v`` (make the order consistent with
    it): when ``order[u] < order[v]`` nothing to do; otherwise discover
    the affected region — ``F`` forward from ``v`` bounded by
    ``order <= order[u]``, ``B`` backward from ``u`` bounded by
    ``order >= order[v]`` — and reassign the sorted union of their old
    positions, ``B`` first then ``F``, each in old relative order.
    Returns ``1`` (order untouched) if the forward search reaches ``u``,
    i.e. the edge closes a cycle.
    """
    if op == 0:
        limit = order[v]
        top = 0
        base = succ_start[u]
        for k in range(succ_len[u]):
            w = succ_pool[base + k]
            if w != v and order[w] < limit and visited[w] != stamp:
                visited[w] = stamp
                stack[top] = w
                top += 1
        while top > 0:
            top -= 1
            x = stack[top]
            xb = succ_start[x]
            for k in range(succ_len[x]):
                w = succ_pool[xb + k]
                if w == v:
                    return 1
                if order[w] < limit and visited[w] != stamp:
                    visited[w] = stamp
                    stack[top] = w
                    top += 1
        return 0

    lb = order[v]
    ub = order[u]
    if ub < lb:
        return 0
    # forward discovery: F = closure of v under "successor with order <= ub"
    nf = 0
    top = 0
    visited[v] = stamp
    stack[top] = v
    top += 1
    while top > 0:
        top -= 1
        x = stack[top]
        f_buf[nf] = x
        nf += 1
        xb = succ_start[x]
        for k in range(succ_len[x]):
            w = succ_pool[xb + k]
            if w == u:
                return 1
            if order[w] <= ub and visited[w] != stamp:
                visited[w] = stamp
                stack[top] = w
                top += 1
    # backward discovery: B = closure of u under "predecessor with order >= lb"
    nb = 0
    top = 0
    visited[u] = -stamp
    stack[top] = u
    top += 1
    while top > 0:
        top -= 1
        x = stack[top]
        b_buf[nb] = x
        nb += 1
        xb = pred_start[x]
        for k in range(pred_len[x]):
            w = pred_pool[xb + k]
            if order[w] >= lb and visited[w] != -stamp:
                visited[w] = -stamp
                stack[top] = w
                top += 1
    # reallocate the union of old positions: B then F, old order preserved
    keys_b = np.empty(nb, dtype=np.int64)
    keys_f = np.empty(nf, dtype=np.int64)
    pool = np.empty(nb + nf, dtype=np.int64)
    for i in range(nb):
        keys_b[i] = order[b_buf[i]]
        pool[i] = keys_b[i]
    for i in range(nf):
        keys_f[i] = order[f_buf[i]]
        pool[nb + i] = keys_f[i]
    pool = np.sort(pool)
    rank_b = np.argsort(keys_b)
    rank_f = np.argsort(keys_f)
    for i in range(nb):
        order[b_buf[rank_b[i]]] = pool[i]
    for i in range(nf):
        order[f_buf[rank_f[i]]] = pool[nb + i]
    return 0


def symbolic_fill_loops(indptr, indices, n):
    """Up-looking symbolic factorisation over a sorted CSR pattern.

    Column ``j``'s below-diagonal structure is the union of ``A``'s column
    entries below ``j`` and the structures of ``j``'s elimination-tree
    children minus their pivot rows.  Children are kept in per-parent
    linked lists; each union is a concatenate-sort-dedupe over sorted
    inputs, so the emitted structures are sorted and duplicate-free —
    identical to the ``np.unique`` of the numpy reference.  Returns the
    ragged structures as ``(out_indptr, out_indices, parents)``.
    """
    parents = np.full(n, -1, dtype=np.int64)
    first_child = np.full(n, -1, dtype=np.int64)
    next_sibling = np.full(n, -1, dtype=np.int64)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    cap = indices.shape[0] + 16
    out = np.empty(cap, dtype=np.int64)
    used = 0
    for j in range(n):
        total = 0
        for k in range(indptr[j], indptr[j + 1]):
            if indices[k] > j:
                total += 1
        c = first_child[j]
        while c != -1:
            total += (out_indptr[c + 1] - out_indptr[c]) - 1
            c = next_sibling[c]
        buf = np.empty(total, dtype=np.int64)
        pos = 0
        for k in range(indptr[j], indptr[j + 1]):
            if indices[k] > j:
                buf[pos] = indices[k]
                pos += 1
        c = first_child[j]
        while c != -1:
            for k in range(out_indptr[c] + 1, out_indptr[c + 1]):
                buf[pos] = out[k]
                pos += 1
            c = next_sibling[c]
        buf = np.sort(buf)
        # dedupe the sorted candidates straight into the output pool
        row_len = 0
        for k in range(total):
            if k == 0 or buf[k] != buf[k - 1]:
                row_len += 1
        while used + row_len > cap:
            cap = cap * 2
            grown = np.empty(cap, dtype=np.int64)
            grown[:used] = out[:used]
            out = grown
        for k in range(total):
            if k == 0 or buf[k] != buf[k - 1]:
                out[used] = buf[k]
                used += 1
        out_indptr[j + 1] = used
        if row_len > 0:
            parent = out[out_indptr[j]]
            parents[j] = parent
            next_sibling[j] = first_child[parent]
            first_child[parent] = j
    return out_indptr, out[:used], parents


def symbolic_fill_quotient_loops(indptr, indices, n):
    """Row-merge-tree symbolic factorisation over a sorted CSR pattern.

    The asymptotic replacement for :func:`symbolic_fill_loops`: instead of
    unioning child structures per column (which re-sorts every candidate
    set), compute the elimination tree first (Liu's ancestor walk with path
    compression), then obtain each row ``i``'s structure as the union of
    the etree paths ``j -> i`` for every entry ``A[i, j]`` with ``j < i``
    — a marked traversal that touches every output entry exactly once, so
    the whole pass is ``O(|A| · α + |L|)``.  Rows are visited in increasing
    ``i``, so each column's structure is emitted sorted and duplicate-free:
    the output is bit-identical to the up-looking kernels.  Returns the
    ragged below-diagonal column structures as ``(out_indptr, out_indices,
    parents)`` with ``parents`` the elimination tree.
    """
    parents = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        for k in range(indptr[j], indptr[j + 1]):
            i = indices[k]
            if i >= j:
                continue
            # climb i's compressed ancestor chain, re-pointing it at j
            while ancestor[i] != -1 and ancestor[i] != j:
                nxt = ancestor[i]
                ancestor[i] = j
                i = nxt
            if ancestor[i] == -1:
                ancestor[i] = j
                parents[i] = j
    counts = np.zeros(n, dtype=np.int64)
    mark = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        for k in range(indptr[i], indptr[i + 1]):
            j = indices[k]
            if j >= i:
                continue
            # walk the row subtree: j, parent(j), ... until already marked
            while mark[j] != i:
                counts[j] += 1
                mark[j] = i
                j = parents[j]
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    for j in range(n):
        out_indptr[j + 1] = out_indptr[j] + counts[j]
    out_indices = np.empty(out_indptr[n], dtype=np.int64)
    cursor = out_indptr[:n].copy()
    for j in range(n):
        mark[j] = -1
    for i in range(n):
        mark[i] = i
        for k in range(indptr[i], indptr[i + 1]):
            j = indices[k]
            if j >= i:
                continue
            while mark[j] != i:
                out_indices[cursor[j]] = i
                cursor[j] += 1
                mark[j] = i
                j = parents[j]
    return out_indptr, out_indices, parents
