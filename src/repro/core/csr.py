"""Vectorized kernels over CSR (compressed sparse row) adjacency arrays.

A DAG's adjacency is stored as two CSR array pairs (see
:class:`repro.core.dag.ComputationalDAG`):

* ``succ_indptr`` / ``succ_indices`` — row ``v`` is the slice
  ``succ_indices[succ_indptr[v]:succ_indptr[v + 1]]`` of direct successors,
* ``pred_indptr`` / ``pred_indices`` — the same for direct predecessors.

Rows preserve *edge insertion order*, which keeps every neighbourhood
iteration bit-for-bit identical to the historical list-of-lists container
(schedulers break ties by traversal order, so preserving it keeps their
output schedules unchanged).

The functions in this module are free functions over plain numpy arrays so
that they can be differential-tested against the pure-Python reference
implementations in :mod:`repro.core.reference` and benchmarked in isolation
(``benchmarks/bench_dag_kernels.py``).
"""

from __future__ import annotations

import numpy as np

from .exceptions import CycleError

__all__ = [
    "build_csr",
    "dedupe_edges",
    "gather_rows",
    "group_min_by_pair",
    "group_min_table",
    "row_max_excluding",
    "topological_levels",
    "bottom_levels_csr",
    "reachable_mask",
    "has_path_csr",
    "NO_ENTRY",
]

_INT = np.int64

#: Sentinel for "no entry" in grouped min tables (larger than any superstep).
NO_ENTRY = np.iinfo(np.int64).max


def build_csr(
    num_nodes: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(indptr, indices)`` from parallel edge arrays.

    The relative order of edges sharing a source is preserved (stable sort),
    so row ``v`` lists the targets in edge insertion order.
    """
    sources = np.asarray(sources, dtype=_INT)
    targets = np.asarray(targets, dtype=_INT)
    counts = np.bincount(sources, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=_INT)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(sources, kind="stable")
    indices = np.ascontiguousarray(targets[order])
    return indptr, indices


def gather_rows(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``nodes``.

    Returns ``(values, offsets)`` where ``values`` is the concatenation of
    the rows (in the order given by ``nodes``) and ``offsets`` has length
    ``len(nodes) + 1`` with row ``k`` occupying
    ``values[offsets[k]:offsets[k + 1]]``.
    """
    nodes = np.asarray(nodes, dtype=_INT)
    counts = indptr[nodes + 1] - indptr[nodes]
    offsets = np.zeros(nodes.size + 1, dtype=_INT)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=indices.dtype), offsets
    # classic ragged gather: per-element position = row start + intra-row rank
    positions = np.repeat(indptr[nodes] - offsets[:-1], counts) + np.arange(
        total, dtype=_INT
    )
    return indices[positions], offsets


def dedupe_edges(
    num_nodes: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop duplicate ``(source, target)`` pairs, keeping first occurrences.

    The surviving edges stay in their original order, which preserves the
    per-row neighbour order of any CSR built from them.
    """
    if sources.size == 0:
        return sources, targets
    keys = sources * np.int64(max(num_nodes, 1)) + targets
    _, first_positions = np.unique(keys, return_index=True)
    keep = np.sort(first_positions)
    return sources[keep], targets[keep]


def group_min_by_pair(
    u: np.ndarray, q: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Keep the minimal ``values`` entry of every distinct ``(u, q)`` pair.

    Returns the filtered ``(u, q, values)`` arrays sorted by ``(u, q)``.
    This is the shared "first need" kernel of the lazy communication
    schedule: for every (node, foreign processor) pair, the earliest
    superstep in which the node's value is required there.
    """
    order = np.lexsort((values, q, u))
    u, q, values = u[order], q[order], values[order]
    first = np.ones(u.size, dtype=bool)
    first[1:] = (u[1:] != u[:-1]) | (q[1:] != q[:-1])
    return u[first], q[first], values[first]


def group_min_table(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    num_rows: int,
    num_cols: int,
) -> np.ndarray:
    """Dense ``(num_rows, num_cols)`` table of per-cell minima.

    ``table[r, c] = min(values[rows == r and cols == c])`` with empty cells
    holding :data:`NO_ENTRY`.  This is the batched counterpart of
    :func:`group_min_by_pair` for small, dense group domains — the
    hill-climbing refiner uses it to build the "first superstep that needs a
    value on each processor" table of a node's whole predecessor
    neighbourhood in one pass.
    """
    table = np.full((num_rows, num_cols), NO_ENTRY, dtype=_INT)
    if rows.size:
        np.minimum.at(table, (rows, cols), values)
    return table


def row_max_excluding(values: np.ndarray) -> np.ndarray:
    """``out[i] = max(values[j] for j != i)`` for a 1-D array.

    Computed from the top-2 entries, so one O(n) pass instead of n masked
    maxima.  For a single-element array the exclusion is empty and the
    result is ``-inf``.
    """
    if values.size == 1:
        return np.full(1, -np.inf)
    top = int(np.argmax(values))
    rest = np.delete(values, top)
    out = np.full(values.size, values[top], dtype=np.float64)
    out[top] = rest.max()
    return out


def topological_levels(
    num_nodes: int,
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    pred_indptr: np.ndarray,
) -> np.ndarray:
    """Top level (longest edge-path from any source) of every node.

    Runs a level-synchronous Kahn sweep: the whole zero-indegree frontier is
    retired per round with one ragged gather and one ``bincount``, so the
    work is ``O(n + m)`` numpy operations with ``O(depth)`` Python
    iterations.

    Raises
    ------
    CycleError
        If the graph contains a directed cycle.
    """
    levels = np.zeros(num_nodes, dtype=_INT)
    indegree = np.diff(pred_indptr).copy()
    frontier = np.flatnonzero(indegree == 0)
    processed = 0
    level = 0
    while frontier.size:
        levels[frontier] = level
        processed += frontier.size
        targets, _ = gather_rows(succ_indptr, succ_indices, frontier)
        if targets.size:
            # touch only the reached nodes (O(frontier edges), not O(n)):
            # unique-sort the targets, subtract multiplicities, keep zeros
            unique_targets, counts = np.unique(targets, return_counts=True)
            indegree[unique_targets] -= counts
            frontier = unique_targets[indegree[unique_targets] == 0]
        else:
            frontier = targets
        level += 1
    if processed != num_nodes:
        raise CycleError("graph contains a directed cycle")
    return levels


def bottom_levels_csr(
    levels: np.ndarray,
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    work: np.ndarray,
) -> np.ndarray:
    """Bottom level ``bl(v) = w(v) + max_{(v,u)} bl(u)`` of every node.

    Nodes are processed level group by level group from the sinks upward;
    within one group every segment maximum over the successor rows is
    computed with a single ``np.maximum.reduceat``.
    """
    num_nodes = levels.size
    bl = np.array(work, dtype=np.float64, copy=True)
    if num_nodes == 0:
        return bl
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    # boundaries of the level groups inside ``order``
    boundaries = np.flatnonzero(np.diff(sorted_levels)) + 1
    group_starts = np.concatenate(([0], boundaries))
    group_ends = np.concatenate((boundaries, [num_nodes]))
    for g in range(group_starts.size - 1, -1, -1):
        nodes = order[group_starts[g] : group_ends[g]]
        counts = succ_indptr[nodes + 1] - succ_indptr[nodes]
        with_succ = nodes[counts > 0]
        if with_succ.size == 0:
            continue
        targets, offsets = gather_rows(succ_indptr, succ_indices, with_succ)
        seg_max = np.maximum.reduceat(bl[targets], offsets[:-1])
        bl[with_succ] = work[with_succ] + seg_max
    return bl


def reachable_mask(
    indptr: np.ndarray, indices: np.ndarray, start: int, num_nodes: int
) -> np.ndarray:
    """Boolean mask of all nodes reachable from ``start`` via >= 1 edge.

    Frontier-at-a-time BFS: every round gathers the neighbourhoods of the
    whole frontier at once instead of popping nodes one by one.
    """
    seen = np.zeros(num_nodes, dtype=bool)
    frontier = np.unique(indices[indptr[start] : indptr[start + 1]])
    seen[frontier] = True
    while frontier.size:
        targets, _ = gather_rows(indptr, indices, frontier)
        targets = targets[~seen[targets]]
        frontier = np.unique(targets)
        seen[frontier] = True
    return seen


def has_path_csr(
    indptr: np.ndarray, indices: np.ndarray, source: int, target: int, num_nodes: int
) -> bool:
    """Whether ``target`` is reachable from ``source`` via >= 1 edge.

    Same frontier BFS as :func:`reachable_mask` but exits as soon as the
    target enters the frontier, so e.g. cycle checks on an adjacent edge
    stop after one round.
    """
    seen = np.zeros(num_nodes, dtype=bool)
    frontier = np.unique(indices[indptr[source] : indptr[source + 1]])
    seen[frontier] = True
    while frontier.size:
        if seen[target]:
            return True
        targets, _ = gather_rows(indptr, indices, frontier)
        targets = targets[~seen[targets]]
        frontier = np.unique(targets)
        seen[frontier] = True
    return bool(seen[target])
