"""Communication schedules for BSP schedules.

A communication schedule ``Γ`` is a set of 4-tuples ``(v, p1, p2, s)``
meaning that the output value of node ``v`` is sent from processor ``p1`` to
processor ``p2`` in the communication phase of superstep ``s``
(paper Section 3.2).

Most of the lightweight schedulers in the framework (the converted
baselines, ``BSPg``, ``Source`` and the node-move hill climbing ``HC``)
never construct ``Γ`` explicitly; they rely on the *lazy* communication
schedule, where every value that crosses a processor boundary is sent
directly from the processor that computed it, in the last possible
communication phase before it is needed (Appendix A).  This module derives
that lazy schedule and the per-target communication *windows* used by the
communication-schedule optimisers (``HCcs`` and ``ILPcs``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, NamedTuple

from .exceptions import ScheduleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dag import ComputationalDAG

__all__ = ["CommStep", "lazy_comm_schedule", "required_transfers", "CommWindow"]


class CommStep(NamedTuple):
    """One entry ``(v, p1, p2, s)`` of a communication schedule ``Γ``."""

    node: int
    source: int
    target: int
    superstep: int


class CommWindow(NamedTuple):
    """The feasible superstep window for one required transfer.

    A value ``node`` computed on ``source`` that is needed on ``target`` can
    be sent in any communication phase ``s`` with
    ``earliest <= s <= latest`` where ``earliest = τ(node)`` and
    ``latest = (first superstep that needs it on target) - 1``.
    """

    node: int
    source: int
    target: int
    earliest: int
    latest: int


def required_transfers(
    dag: "ComputationalDAG",
    procs,
    supersteps,
) -> list[CommWindow]:
    """All transfers required by the assignment ``(π, τ)``, with their windows.

    For every node ``v`` and every processor ``q != π(v)`` that computes at
    least one direct successor of ``v``, a transfer of ``v`` from ``π(v)``
    to ``q`` is required.  The earliest phase is ``τ(v)`` and the latest is
    one before the first superstep in which ``q`` needs the value.

    Raises
    ------
    ScheduleError
        If some successor of ``v`` on another processor is scheduled no
        later than ``τ(v)``, in which case no valid direct transfer exists.
    """
    windows: list[CommWindow] = []
    for v in dag.nodes():
        pv = int(procs[v])
        sv = int(supersteps[v])
        # first superstep where v is needed on each foreign processor
        first_need: dict[int, int] = {}
        for w in dag.successors(v):
            q = int(procs[w])
            if q == pv:
                continue
            sw = int(supersteps[w])
            if q not in first_need or sw < first_need[q]:
                first_need[q] = sw
        for q, sw in sorted(first_need.items()):
            if sw <= sv:
                raise ScheduleError(
                    f"node {v} (proc {pv}, superstep {sv}) is needed on proc {q} "
                    f"already in superstep {sw}; no valid communication phase exists"
                )
            windows.append(CommWindow(v, pv, q, earliest=sv, latest=sw - 1))
    return windows


def lazy_comm_schedule(
    dag: "ComputationalDAG",
    procs,
    supersteps,
) -> frozenset[CommStep]:
    """The lazy communication schedule for the assignment ``(π, τ)``.

    Every required value is sent directly from the processor that computed
    it, in the last possible communication phase (``latest`` of its window).
    """
    return frozenset(
        CommStep(w.node, w.source, w.target, w.latest)
        for w in required_transfers(dag, procs, supersteps)
    )


def eager_comm_schedule(
    dag: "ComputationalDAG",
    procs,
    supersteps,
) -> frozenset[CommStep]:
    """The eager variant: every required value is sent as early as possible.

    Provided for completeness and for testing the communication-schedule
    optimisers (both lazy and eager schedules are valid; their costs differ
    only in how transfers are packed into h-relations).
    """
    return frozenset(
        CommStep(w.node, w.source, w.target, w.earliest)
        for w in required_transfers(dag, procs, supersteps)
    )


def comm_schedule_from_choices(
    windows: Iterable[CommWindow],
    choices: Iterable[int],
) -> frozenset[CommStep]:
    """Build ``Γ`` from explicit per-transfer superstep choices.

    ``choices[i]`` must lie inside ``windows[i]``'s feasible range.
    """
    steps = []
    for window, s in zip(windows, choices, strict=True):
        if not window.earliest <= s <= window.latest:
            raise ScheduleError(
                f"superstep {s} outside window [{window.earliest}, {window.latest}] "
                f"for transfer of node {window.node} to proc {window.target}"
            )
        steps.append(CommStep(window.node, window.source, window.target, int(s)))
    return frozenset(steps)
