"""Communication schedules for BSP schedules.

A communication schedule ``Γ`` is a set of 4-tuples ``(v, p1, p2, s)``
meaning that the output value of node ``v`` is sent from processor ``p1`` to
processor ``p2`` in the communication phase of superstep ``s``
(paper Section 3.2).

Most of the lightweight schedulers in the framework (the converted
baselines, ``BSPg``, ``Source`` and the node-move hill climbing ``HC``)
never construct ``Γ`` explicitly; they rely on the *lazy* communication
schedule, where every value that crosses a processor boundary is sent
directly from the processor that computed it, in the last possible
communication phase before it is needed (Appendix A).  This module derives
that lazy schedule and the per-target communication *windows* used by the
communication-schedule optimisers (``HCcs`` and ``ILPcs``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, NamedTuple

import numpy as np

from .csr import group_min_by_pair
from .exceptions import ScheduleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dag import ComputationalDAG

__all__ = ["CommStep", "lazy_comm_schedule", "required_transfers", "CommWindow"]


class CommStep(NamedTuple):
    """One entry ``(v, p1, p2, s)`` of a communication schedule ``Γ``."""

    node: int
    source: int
    target: int
    superstep: int


class CommWindow(NamedTuple):
    """The feasible superstep window for one required transfer.

    A value ``node`` computed on ``source`` that is needed on ``target`` can
    be sent in any communication phase ``s`` with
    ``earliest <= s <= latest`` where ``earliest = τ(node)`` and
    ``latest = (first superstep that needs it on target) - 1``.
    """

    node: int
    source: int
    target: int
    earliest: int
    latest: int


def required_transfers(
    dag: "ComputationalDAG",
    procs,
    supersteps,
) -> list[CommWindow]:
    """All transfers required by the assignment ``(π, τ)``, with their windows.

    For every node ``v`` and every processor ``q != π(v)`` that computes at
    least one direct successor of ``v``, a transfer of ``v`` from ``π(v)``
    to ``q`` is required.  The earliest phase is ``τ(v)`` and the latest is
    one before the first superstep in which ``q`` needs the value.

    The enumeration is vectorized over the DAG's CSR edge arrays: the
    cross-processor edges are filtered with one mask, grouped by
    ``(v, q)`` with a lexsort, and the first (minimal-superstep) member of
    every group becomes the window.  Windows come back sorted by
    ``(node, target)``, exactly like the historical per-node loop.

    Raises
    ------
    ScheduleError
        If some successor of ``v`` on another processor is scheduled no
        later than ``τ(v)``, in which case no valid direct transfer exists.
    """
    procs = np.asarray(procs, dtype=np.int64)
    supersteps = np.asarray(supersteps, dtype=np.int64)
    src, dst = dag.edge_arrays()
    if src.size == 0:
        return []
    cross = procs[src] != procs[dst]
    if not cross.any():
        return []
    cross_dst = dst[cross]
    u, q, sw = group_min_by_pair(src[cross], procs[cross_dst], supersteps[cross_dst])
    sv = supersteps[u]
    bad = sw <= sv
    if bad.any():
        i = int(np.argmax(bad))
        raise ScheduleError(
            f"node {int(u[i])} (proc {int(procs[u[i]])}, superstep {int(sv[i])}) "
            f"is needed on proc {int(q[i])} already in superstep {int(sw[i])}; "
            "no valid communication phase exists"
        )
    pv = procs[u]
    return [
        CommWindow(node, source, target, earliest=early, latest=late)
        for node, source, target, early, late in zip(
            u.tolist(), pv.tolist(), q.tolist(), sv.tolist(), (sw - 1).tolist()
        )
    ]


def lazy_comm_schedule(
    dag: "ComputationalDAG",
    procs,
    supersteps,
) -> frozenset[CommStep]:
    """The lazy communication schedule for the assignment ``(π, τ)``.

    Every required value is sent directly from the processor that computed
    it, in the last possible communication phase (``latest`` of its window).
    """
    return frozenset(
        CommStep(w.node, w.source, w.target, w.latest)
        for w in required_transfers(dag, procs, supersteps)
    )


def eager_comm_schedule(
    dag: "ComputationalDAG",
    procs,
    supersteps,
) -> frozenset[CommStep]:
    """The eager variant: every required value is sent as early as possible.

    Provided for completeness and for testing the communication-schedule
    optimisers (both lazy and eager schedules are valid; their costs differ
    only in how transfers are packed into h-relations).
    """
    return frozenset(
        CommStep(w.node, w.source, w.target, w.earliest)
        for w in required_transfers(dag, procs, supersteps)
    )


def comm_schedule_from_choices(
    windows: Iterable[CommWindow],
    choices: Iterable[int],
) -> frozenset[CommStep]:
    """Build ``Γ`` from explicit per-transfer superstep choices.

    ``choices[i]`` must lie inside ``windows[i]``'s feasible range.
    """
    steps = []
    for window, s in zip(windows, choices, strict=True):
        if not window.earliest <= s <= window.latest:
            raise ScheduleError(
                f"superstep {s} outside window [{window.earliest}, {window.latest}] "
                f"for transfer of node {window.node} to proc {window.target}"
            )
        steps.append(CommStep(window.node, window.source, window.target, int(s)))
    return frozenset(steps)
