"""Validity checking for BSP schedules (paper Section 3.2).

A BSP schedule ``(π, τ, Γ)`` is valid when

* every node is assigned to a processor in ``0..P-1`` and a superstep
  ``>= 0``;
* for every edge ``(u, v)``: if ``π(u) == π(v)`` then ``τ(u) <= τ(v)``,
  otherwise there is an entry ``(u, p1, π(v), s) ∈ Γ`` with ``s < τ(v)``;
* for every ``(v, p1, p2, s) ∈ Γ``: either ``π(v) == p1`` and
  ``τ(v) <= s``, or there is another entry ``(v, p', p1, s') ∈ Γ`` with
  ``s' < s`` (the value reached ``p1`` earlier via forwarding);
* no entry of ``Γ`` re-delivers a value that is already present on its
  target processor no later than the delivery would arrive (a redundant
  transfer, e.g. a duplicate send or a forwarding loop back to the
  computing processor).

Implementation notes
--------------------
All checks run as vectorized passes over the DAG's CSR edge arrays and the
comm-step columns: assignment ranges, per-step sanity and redundant
deliveries, same-processor precedence and cross-processor availability are
each one numpy mask; only the (bounded, ``max_violations``-capped) message
rendering walks the flagged indices one by one.  Value availability under
forwarding keeps the seed's fixpoint semantics but relaxes whole step
columns per round against a ``(node, processor)`` availability table.

The table is dense (one cell per ``(node, processor)`` pair) up to
``_MAX_DENSE_CELLS`` cells.  Above that, the same passes run against a
*sparse unique-key* table: only the ``(node, processor)`` pairs that can
ever carry a value — computing processors, comm-step endpoints, and edge
targets' processors — are materialised, compacted with one ``np.unique``
and addressed by ``np.searchsorted``.  Very large machines therefore stay
on the vectorized path instead of the reference walker.

Degenerate inputs whose processor or node ids fall outside the machine and
DAG (which neither table can index) fall back to the pure-Python reference
walker in :mod:`repro.core.reference`, which produces bit-identical
messages; the same walker backs the differential tests and benchmarks.
"""

from __future__ import annotations

from itertools import chain
from typing import TYPE_CHECKING, Iterable

import numpy as np

from .comm import CommStep
from .exceptions import ScheduleError
from .reference import schedule_violations_ref

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dag import ComputationalDAG
    from .machine import BspMachine

__all__ = ["validate_schedule", "schedule_violations"]

_INF = np.iinfo(np.int64).max
# above this many (node, processor) cells the dense availability table is
# not worth its memory; such instances use the sparse unique-key table
_MAX_DENSE_CELLS = 64_000_000


def _step_columns(steps: list[CommStep]) -> tuple[np.ndarray, ...]:
    """The four step fields as parallel int64 columns.

    ``np.fromiter`` over the flattened field stream is ~7x faster than
    ``np.asarray`` on the list of named tuples (no per-row shape discovery).
    """
    table = np.fromiter(
        chain.from_iterable(steps), dtype=np.int64, count=4 * len(steps)
    ).reshape(len(steps), 4)
    return table[:, 0], table[:, 1], table[:, 2], table[:, 3]


def _redundant_mask(
    node: np.ndarray,
    target: np.ndarray,
    superstep: np.ndarray,
    base_avail: np.ndarray,
) -> np.ndarray:
    """Vectorized twin of :func:`repro.core.reference._redundant_deliveries`.

    ``base_avail[i]`` is the superstep from which step ``i``'s value is
    present on its target *without* any comm step (``τ(node)`` when the
    target computes the node, a large sentinel otherwise).  Step ``i`` is
    redundant when the earliest other presence of its ``(node, target)``
    pair — computed per group with one lexsort — is no later than its own
    arrival.
    """
    arrival = superstep + 1
    key = node * (target.max() + 1) + target
    order = np.lexsort((arrival, key))
    k_sorted = key[order]
    a_sorted = arrival[order]
    boundary = np.concatenate(([True], k_sorted[1:] != k_sorted[:-1]))
    starts = np.flatnonzero(boundary)
    group_of = np.cumsum(boundary) - 1
    first = a_sorted[starts]  # minimal arrival per group
    is_first = a_sorted == first[group_of]
    first_count = np.add.reduceat(is_first.astype(np.int64), starts)
    second = np.minimum.reduceat(np.where(is_first, _INF, a_sorted), starts)
    # earliest arrival of a *different* step with the same key
    other = np.where(
        (a_sorted > first[group_of]) | (first_count[group_of] >= 2),
        first[group_of],
        second[group_of],
    )
    redundant_sorted = np.minimum(other, base_avail[order]) <= a_sorted
    redundant = np.empty(arrival.size, dtype=bool)
    redundant[order] = redundant_sorted
    return redundant


def schedule_violations(
    dag: "ComputationalDAG",
    machine: "BspMachine",
    procs: np.ndarray,
    supersteps: np.ndarray,
    comm_schedule: Iterable[CommStep],
    max_violations: int = 20,
) -> list[str]:
    """Return human-readable descriptions of validity violations (possibly empty).

    At most ``max_violations`` messages are collected so that badly broken
    schedules do not produce unbounded output.
    """
    procs = np.asarray(procs)
    supersteps = np.asarray(supersteps)
    steps = list(comm_schedule)
    n = dag.num_nodes
    if procs.shape != (n,) or supersteps.shape != (n,):
        return [
            f"assignment arrays must have shape ({n},); got procs {procs.shape}, "
            f"supersteps {supersteps.shape}"
        ]
    num_procs = machine.num_procs
    procs_i = procs.astype(np.int64, copy=False)
    steps_i = supersteps.astype(np.int64, copy=False)

    bad_proc = (procs_i < 0) | (procs_i >= num_procs)
    if steps:
        s_node, s_src, s_tgt, s_sup = _step_columns(steps)
        bad_step = (
            (s_src < 0)
            | (s_src >= num_procs)
            | (s_tgt < 0)
            | (s_tgt >= num_procs)
            | (s_node < 0)
            | (s_node >= n)
        )
    src, dst = dag.edge_arrays()
    if bad_proc.any() or (steps and bad_step.any()):
        return schedule_violations_ref(
            n,
            num_procs,
            list(zip(src.tolist(), dst.tolist())),
            procs,
            supersteps,
            steps,
            max_violations,
        )

    violations: list[str] = []

    def add(message: str) -> bool:
        violations.append(message)
        return len(violations) >= max_violations

    # assignment range checks (all processors are in range on this path)
    neg_step = steps_i < 0
    if neg_step.any():
        for v in np.flatnonzero(neg_step).tolist():
            if add(f"node {v} assigned to negative superstep {int(supersteps[v])}"):
                return violations

    # availability table: avail[key(v, p)] = first superstep in which the
    # value of v is present on processor p (sentinel = never).  Dense keys
    # up to the cell ceiling; above it, only the (node, processor) pairs
    # any check can touch are materialised and addressed via searchsorted.
    compute_key = np.arange(n, dtype=np.int64) * num_procs + procs_i
    if n * num_procs <= _MAX_DENSE_CELLS:
        table_size = n * num_procs

        def key_index(keys: np.ndarray) -> np.ndarray:
            return keys
    else:
        candidates = [compute_key]
        if steps:
            candidates.append(s_node * num_procs + s_src)
            candidates.append(s_node * num_procs + s_tgt)
        if src.size:
            candidates.append(src * np.int64(num_procs) + procs_i[dst])
        unique_keys = np.unique(np.concatenate(candidates))
        table_size = unique_keys.size

        def key_index(keys: np.ndarray) -> np.ndarray:
            return np.searchsorted(unique_keys, keys)

    avail = np.full(table_size, _INF, dtype=np.int64)
    avail[key_index(compute_key)] = steps_i

    if steps:
        # communication schedule sanity
        neg_sup = s_sup < 0
        self_send = s_src == s_tgt
        redundant = _redundant_mask(
            s_node, s_tgt, s_sup, avail[key_index(s_node * num_procs + s_tgt)]
        )
        flagged = neg_sup | self_send | redundant
        if flagged.any():
            for i in np.flatnonzero(flagged).tolist():
                step = steps[i]
                if neg_sup[i] and add(f"comm step {step} has a negative superstep"):
                    return violations
                if self_send[i] and add(
                    f"comm step {step} sends a value to its own processor"
                ):
                    return violations
                if redundant[i] and add(
                    f"comm step {step} re-delivers the value of node {step.node} to "
                    f"processor {step.target}, which already has it"
                ):
                    return violations

        # Resolve availability with forwarding: relax all steps per round
        # until fixpoint (rounds are bounded by the longest forwarding chain).
        src_key = key_index(s_node * num_procs + s_src)
        tgt_key = key_index(s_node * num_procs + s_tgt)
        arrival = s_sup + 1
        while True:
            can_send = avail[src_key] <= s_sup
            before = avail[tgt_key[can_send]]
            np.minimum.at(avail, tgt_key[can_send], arrival[can_send])
            if not (avail[tgt_key[can_send]] < before).any():
                break

        # every comm step must itself be justified
        unjustified = avail[src_key] > s_sup
        if unjustified.any():
            for i in np.flatnonzero(unjustified).tolist():
                step = steps[i]
                if add(
                    f"comm step {step}: value of node {step.node} is not available on "
                    f"processor {step.source} by superstep {step.superstep}"
                ):
                    return violations

    # precedence constraints
    if src.size:
        pu = procs_i[src]
        pv = procs_i[dst]
        su = steps_i[src]
        sv = steps_i[dst]
        same = pu == pv
        bad_same = same & (su > sv)
        bad_cross = ~same & (avail[key_index(src * np.int64(num_procs) + pv)] > sv)
        flagged_edges = bad_same | bad_cross
        if flagged_edges.any():
            for i in np.flatnonzero(flagged_edges).tolist():
                u, v = int(src[i]), int(dst[i])
                if bad_same[i] and add(
                    f"edge ({u},{v}): predecessor on same processor {int(pu[i])} but "
                    f"scheduled later (superstep {int(su[i])} > {int(sv[i])})"
                ):
                    return violations
                if bad_cross[i] and add(
                    f"edge ({u},{v}): value of {u} never reaches processor {int(pv[i])} "
                    f"before superstep {int(sv[i])}"
                ):
                    return violations
    return violations


def validate_schedule(
    dag: "ComputationalDAG",
    machine: "BspMachine",
    procs: np.ndarray,
    supersteps: np.ndarray,
    comm_schedule: Iterable[CommStep],
) -> None:
    """Raise :class:`ScheduleError` if the schedule is invalid."""
    violations = schedule_violations(dag, machine, procs, supersteps, comm_schedule)
    if violations:
        raise ScheduleError(
            "invalid BSP schedule:\n  " + "\n  ".join(violations)
        )
