"""Validity checking for BSP schedules (paper Section 3.2).

A BSP schedule ``(π, τ, Γ)`` is valid when

* every node is assigned to a processor in ``0..P-1`` and a superstep
  ``>= 0``;
* for every edge ``(u, v)``: if ``π(u) == π(v)`` then ``τ(u) <= τ(v)``,
  otherwise there is an entry ``(u, p1, π(v), s) ∈ Γ`` with ``s < τ(v)``;
* for every ``(v, p1, p2, s) ∈ Γ``: either ``π(v) == p1`` and
  ``τ(v) <= s``, or there is another entry ``(v, p', p1, s') ∈ Γ`` with
  ``s' < s`` (the value reached ``p1`` earlier via forwarding).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from .comm import CommStep
from .exceptions import ScheduleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dag import ComputationalDAG
    from .machine import BspMachine

__all__ = ["validate_schedule", "schedule_violations"]


def schedule_violations(
    dag: "ComputationalDAG",
    machine: "BspMachine",
    procs: np.ndarray,
    supersteps: np.ndarray,
    comm_schedule: Iterable[CommStep],
    max_violations: int = 20,
) -> list[str]:
    """Return human-readable descriptions of validity violations (possibly empty).

    At most ``max_violations`` messages are collected so that badly broken
    schedules do not produce unbounded output.
    """
    procs = np.asarray(procs)
    supersteps = np.asarray(supersteps)
    steps = list(comm_schedule)
    violations: list[str] = []

    def add(message: str) -> bool:
        violations.append(message)
        return len(violations) >= max_violations

    n = dag.num_nodes
    if procs.shape != (n,) or supersteps.shape != (n,):
        return [
            f"assignment arrays must have shape ({n},); got procs {procs.shape}, "
            f"supersteps {supersteps.shape}"
        ]

    # assignment range checks
    for v in dag.nodes():
        if not 0 <= int(procs[v]) < machine.num_procs:
            if add(f"node {v} assigned to invalid processor {int(procs[v])}"):
                return violations
        if int(supersteps[v]) < 0:
            if add(f"node {v} assigned to negative superstep {int(supersteps[v])}"):
                return violations

    # communication schedule sanity
    arrivals: dict[tuple[int, int], int] = {}  # (node, proc) -> earliest superstep value is present
    for v in dag.nodes():
        arrivals[(v, int(procs[v]))] = int(supersteps[v])
    for step in steps:
        if not 0 <= step.source < machine.num_procs or not 0 <= step.target < machine.num_procs:
            if add(f"comm step {step} references an invalid processor"):
                return violations
        if step.superstep < 0:
            if add(f"comm step {step} has a negative superstep"):
                return violations
        if step.source == step.target:
            if add(f"comm step {step} sends a value to its own processor"):
                return violations
        key = (step.node, step.target)
        arrival = step.superstep + 1  # available from the following superstep on
        if key not in arrivals or arrival < arrivals[key]:
            # provisional; justification of the *source* is checked below
            pass

    # Resolve availability with forwarding: iterate until fixpoint (the number
    # of steps is small; each pass relaxes at least one arrival or stops).
    available: dict[tuple[int, int], int] = {}
    for v in dag.nodes():
        available[(v, int(procs[v]))] = int(supersteps[v])
    changed = True
    while changed:
        changed = False
        for step in steps:
            src_key = (step.node, step.source)
            if src_key in available and available[src_key] <= step.superstep:
                tgt_key = (step.node, step.target)
                arrival = step.superstep + 1
                if tgt_key not in available or arrival < available[tgt_key]:
                    available[tgt_key] = arrival
                    changed = True

    # every comm step must itself be justified
    for step in steps:
        src_key = (step.node, step.source)
        if src_key not in available or available[src_key] > step.superstep:
            if add(
                f"comm step {step}: value of node {step.node} is not available on "
                f"processor {step.source} by superstep {step.superstep}"
            ):
                return violations

    # precedence constraints
    for edge in dag.edges():
        u, v = edge.source, edge.target
        pu, pv = int(procs[u]), int(procs[v])
        su, sv = int(supersteps[u]), int(supersteps[v])
        if pu == pv:
            if su > sv:
                if add(
                    f"edge ({u},{v}): predecessor on same processor {pu} but "
                    f"scheduled later (superstep {su} > {sv})"
                ):
                    return violations
        else:
            key = (u, pv)
            if key not in available or available[key] > sv:
                if add(
                    f"edge ({u},{v}): value of {u} never reaches processor {pv} "
                    f"before superstep {sv}"
                ):
                    return violations
    return violations


def validate_schedule(
    dag: "ComputationalDAG",
    machine: "BspMachine",
    procs: np.ndarray,
    supersteps: np.ndarray,
    comm_schedule: Iterable[CommStep],
) -> None:
    """Raise :class:`ScheduleError` if the schedule is invalid."""
    violations = schedule_violations(dag, machine, procs, supersteps, comm_schedule)
    if violations:
        raise ScheduleError(
            "invalid BSP schedule:\n  " + "\n  ".join(violations)
        )
