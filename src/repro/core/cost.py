"""BSP(+NUMA) cost model (paper Section 3.3 and 3.4).

The cost of superstep ``s`` is

``C(s) = C_work(s) + g * C_comm(s) + ℓ``

where

* ``C_work(s)`` is the maximum total work assigned to any processor in the
  computation phase of ``s``,
* ``C_comm(s)`` is the h-relation cost of the communication phase: the
  maximum over processors of the larger of its total *send* and *receive*
  volume, every transferred value weighted by ``c(v) * λ[p1][p2]``,
* ``ℓ`` is the per-superstep latency.

The total schedule cost is the sum over all supersteps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from .comm import CommStep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dag import ComputationalDAG
    from .machine import BspMachine

__all__ = ["CostBreakdown", "evaluate_cost", "work_matrix", "comm_matrices"]


@dataclass(frozen=True)
class CostBreakdown:
    """Full cost decomposition of a BSP schedule.

    Attributes
    ----------
    work:
        Total work cost (sum over supersteps of the per-superstep maxima).
    comm:
        Total communication cost already multiplied by ``g``.
    latency:
        Total latency cost ``ℓ * num_supersteps``.
    work_per_superstep, comm_per_superstep:
        Per-superstep components (``comm_per_superstep`` is the raw
        h-relation value, *not* multiplied by ``g``).
    """

    work: float
    comm: float
    latency: float
    work_per_superstep: tuple[float, ...]
    comm_per_superstep: tuple[float, ...]

    @property
    def total(self) -> float:
        """Total schedule cost."""
        return self.work + self.comm + self.latency

    @property
    def num_supersteps(self) -> int:
        """Number of supersteps the breakdown covers."""
        return len(self.work_per_superstep)

    def __float__(self) -> float:
        return self.total


def work_matrix(
    dag: "ComputationalDAG",
    num_procs: int,
    num_supersteps: int,
    procs: np.ndarray,
    supersteps: np.ndarray,
) -> np.ndarray:
    """``(num_supersteps, num_procs)`` matrix of per-processor work per superstep."""
    work = np.zeros((num_supersteps, num_procs), dtype=np.float64)
    np.add.at(work, (supersteps, procs), dag.work_weights)
    return work


def comm_matrices(
    dag: "ComputationalDAG",
    machine: "BspMachine",
    num_supersteps: int,
    comm_schedule: Iterable[CommStep],
) -> tuple[np.ndarray, np.ndarray]:
    """Send and receive volume matrices, shape ``(num_supersteps, P)`` each.

    Every communication step ``(v, p1, p2, s)`` contributes
    ``c(v) * λ[p1][p2]`` to ``send[s, p1]`` and ``recv[s, p2]``.
    """
    send = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
    recv = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
    comm_weights = dag.comm_weights
    numa = machine.numa
    for step in comm_schedule:
        volume = comm_weights[step.node] * numa[step.source, step.target]
        send[step.superstep, step.source] += volume
        recv[step.superstep, step.target] += volume
    return send, recv


def evaluate_cost(
    dag: "ComputationalDAG",
    machine: "BspMachine",
    procs: np.ndarray,
    supersteps: np.ndarray,
    comm_schedule: Iterable[CommStep],
    num_supersteps: int | None = None,
) -> CostBreakdown:
    """Evaluate the full BSP(+NUMA) cost of an assignment plus ``Γ``.

    ``num_supersteps`` defaults to one more than the largest superstep index
    appearing in either the assignment or the communication schedule.
    """
    procs = np.asarray(procs, dtype=np.int64)
    supersteps = np.asarray(supersteps, dtype=np.int64)
    comm_schedule = list(comm_schedule)
    if num_supersteps is None:
        max_s = int(supersteps.max(initial=-1))
        if comm_schedule:
            max_s = max(max_s, max(step.superstep for step in comm_schedule))
        num_supersteps = max_s + 1
    if num_supersteps <= 0:
        return CostBreakdown(0.0, 0.0, 0.0, (), ())

    work = work_matrix(dag, machine.num_procs, num_supersteps, procs, supersteps)
    send, recv = comm_matrices(dag, machine, num_supersteps, comm_schedule)

    work_per_step = work.max(axis=1)
    comm_per_step = np.maximum(send, recv).max(axis=1)

    total_work = float(work_per_step.sum())
    total_comm = float(machine.g * comm_per_step.sum())
    total_latency = float(machine.latency * num_supersteps)
    return CostBreakdown(
        work=total_work,
        comm=total_comm,
        latency=total_latency,
        work_per_superstep=tuple(float(x) for x in work_per_step),
        comm_per_superstep=tuple(float(x) for x in comm_per_step),
    )
