"""Deterministic pool fan-out (process or thread) shared by the batched entry points.

Both the experiment grid (:func:`repro.analysis.experiments.run_grid`) and
the scheduling service (:meth:`repro.api.SchedulingService.solve_many`)
distribute independent tasks over a process pool with the same guarantees:

* results always come back in the deterministic serial task order,
* the shared payload (runner / service configuration) crosses the worker
  pipe once per worker (pool initializer), not once per task,
* an unusable pool (no ``fork``/``spawn``, unpicklable payload, sandboxed
  interpreter) degrades to serial execution with a warning instead of
  failing,
* a crashed worker (:class:`BrokenProcessPool`) keeps every completed
  result and recomputes only the unfinished tasks serially,
* a genuine task error cancels the remaining tasks and propagates promptly
  — unless the caller opts into per-task error capture
  (``return_errors=True``), in which case each failed task yields a
  :class:`TaskError` in its result slot and the rest of the batch runs to
  completion (what the work-queue dispatcher needs: one poisoned request
  must not wedge a leased batch).

:func:`parallel_map` is the single implementation of that contract; the
``handler`` must be a module-level function (picklable by reference) taking
``(payload, task)``.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

__all__ = ["TaskError", "default_workers", "parallel_map"]

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


@dataclass
class TaskError:
    """A captured per-task failure (``parallel_map(..., return_errors=True)``)."""

    error: Exception

    def __str__(self) -> str:
        return f"{type(self.error).__name__}: {self.error}"


def default_workers() -> int:
    """Worker count from the ``REPRO_WORKERS`` environment knob (default 1)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        return max(int(raw), 1)
    except ValueError:
        warnings.warn(f"ignoring non-integer REPRO_WORKERS={raw!r}", stacklevel=2)
        return 1


#: per-worker state installed by the pool initializer, so the (potentially
#: heavy) shared payload is pickled once per worker, not per task
_WORKER_HANDLER: Callable | None = None
_WORKER_PAYLOAD = None


def _init_pool_worker(handler: Callable, payload) -> None:
    global _WORKER_HANDLER, _WORKER_PAYLOAD
    _WORKER_HANDLER = handler
    _WORKER_PAYLOAD = payload


def _run_pool_task(task):
    """Module-level trampoline so tasks are picklable for the pool."""
    assert _WORKER_HANDLER is not None
    return _WORKER_HANDLER(_WORKER_PAYLOAD, task)


def parallel_map(
    handler: Callable[..., _Result],
    payload,
    tasks: Sequence[_Task],
    workers: int | None = None,
    executor: str = "process",
    return_errors: bool = False,
) -> list[_Result]:
    """Apply ``handler(payload, task)`` to every task, optionally in parallel.

    ``workers=None`` reads the ``REPRO_WORKERS`` environment variable
    (default 1 = serial).  Results are returned in task order regardless of
    ``workers``; see the module docstring for the degradation contract.

    ``return_errors=True`` turns per-task exceptions (including a task that
    fails pickling) into :class:`TaskError` result entries instead of
    cancelling the batch; infrastructure failures (a broken pool) are still
    handled by the serial-recompute contract, not reported as task errors.

    ``executor`` selects the pool flavour: ``"process"`` (the default — full
    interpreter isolation, everything crosses a pickle boundary) or
    ``"thread"`` — shared address space, nothing is pickled, worthwhile when
    the handler spends its time in GIL-releasing code such as the compiled
    kernel backend (:mod:`repro.core.kernels`).  The thread path needs no
    pickling pre-flight and cannot lose workers, so its only degradation is
    ``workers <= 1`` serial execution.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if executor not in ("process", "thread"):
        raise ValueError(
            f"unknown executor {executor!r}: expected 'process' or 'thread'"
        )

    def call(task: _Task) -> _Result:
        if not return_errors:
            return handler(payload, task)
        try:
            return handler(payload, task)
        except Exception as exc:
            return TaskError(exc)  # type: ignore[return-value]

    def serial(indices: Sequence[int] | None = None) -> list[_Result]:
        picked = range(len(tasks)) if indices is None else indices
        return [call(tasks[index]) for index in picked]

    if workers <= 1 or len(tasks) <= 1:
        return serial()

    if executor == "thread":
        pool = ThreadPoolExecutor(max_workers=min(workers, len(tasks)))
        try:
            futures = [pool.submit(handler, payload, task) for task in tasks]
            results = []
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:
                    if return_errors and isinstance(exc, Exception):
                        results.append(TaskError(exc))
                        continue
                    # mirror the process path: a task error cancels the
                    # remaining tasks and propagates promptly
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise
        finally:
            pool.shutdown(wait=False)
        return results

    # pre-flight: prove the shared payload can cross a process boundary
    # (pickle signals this with TypeError/AttributeError/ValueError as often
    # as with PicklingError).  Only the small shared payload is probed —
    # serialising the full task list here would double the pickling work;
    # an unpicklable individual task instead fails fast below.
    try:
        pickle.dumps((handler, payload))
    except (pickle.PicklingError, TypeError, AttributeError, ValueError) as exc:
        warnings.warn(
            f"pool payload is not picklable ({exc!r}); running serially",
            stacklevel=2,
        )
        return serial()

    try:
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
            initializer=_init_pool_worker,
            initargs=(handler, payload),
        )
    except (OSError, ImportError, NotImplementedError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running serially",
            stacklevel=2,
        )
        return serial()
    try:
        futures = [pool.submit(_run_pool_task, task) for task in tasks]
    except BaseException:
        pool.shutdown(cancel_futures=True)
        raise
    results: list[_Result | None] = [None] * len(tasks)
    done = [False] * len(tasks)
    broken: BrokenProcessPool | None = None
    for index, future in enumerate(futures):
        try:
            results[index] = future.result()
            done[index] = True
        except BrokenProcessPool as exc:
            # crashed/killed worker: keep harvesting what did complete
            broken = exc
        except BaseException as exc:
            if return_errors and isinstance(exc, Exception):
                results[index] = TaskError(exc)
                done[index] = True
                continue
            # a genuine task error — including a task that fails pickling —
            # cancels the remaining tasks and propagates promptly instead of
            # sitting through the whole batch
            pool.shutdown(cancel_futures=True)
            raise
    pool.shutdown(cancel_futures=True)
    if broken is not None:
        # recompute only the tasks that never finished; completed parallel
        # results are kept rather than thrown away
        missing = [index for index, ok in enumerate(done) if not ok]
        warnings.warn(
            f"process pool failed ({broken!r}); recomputing "
            f"{len(missing)} unfinished task(s) serially",
            stacklevel=2,
        )
        for index, result in zip(missing, serial(missing)):
            results[index] = result
    return results  # type: ignore[return-value]
