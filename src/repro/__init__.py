"""repro — BSP(+NUMA) multiprocessor DAG scheduling framework.

A from-scratch Python reproduction of *"Efficient Multi-Processor Scheduling
in Increasingly Realistic Models"* (Papp, Anegg, Karanasiou, Yzelman,
SPAA 2024): the BSP+NUMA cost model, the computational DAG database, the
baseline schedulers (Cilk, BL-EST, ETF, HDagg), the initialisation
heuristics (BSPg, Source, ILPinit), hill-climbing local search (HC, HCcs),
the ILP-based improvement methods (ILPfull, ILPpart, ILPcs), the multilevel
scheduler, and the experiment harness regenerating every table and figure of
the paper's evaluation.

Quickstart
----------
>>> from repro import BspMachine, SchedulingPipeline
>>> from repro.dagdb import SparseMatrixPattern, build_spmv_dag
>>> dag = build_spmv_dag(SparseMatrixPattern.random(8, 0.4, seed=1)).dag
>>> machine = BspMachine.uniform(4, g=1, latency=5)
>>> schedule = SchedulingPipeline.default().schedule(dag, machine)
>>> schedule.cost() > 0
True
"""

from .core import (
    BspMachine,
    BspSchedule,
    ClassicalSchedule,
    CommStep,
    ComputationalDAG,
    CostBreakdown,
    ReproError,
    ScheduleError,
    classical_to_bsp,
    evaluate_cost,
    lazy_comm_schedule,
)
from .api import (
    MachineSpec,
    ScheduleRequest,
    ScheduleResult,
    SchedulerSpec,
    SchedulingService,
)
from .schedulers import (
    BlEstScheduler,
    Budget,
    BspGreedyScheduler,
    CilkScheduler,
    CommScheduleHillClimbing,
    EtfScheduler,
    HDaggScheduler,
    HillClimbingImprover,
    IlpCommScheduleImprover,
    LinearClusteringScheduler,
    IlpFullImprover,
    IlpInitScheduler,
    IlpPartialImprover,
    MultilevelPipeline,
    MultilevelScheduler,
    PipelineConfig,
    Scheduler,
    ScheduleImprover,
    SchedulingPipeline,
    SimulatedAnnealingImprover,
    SourceScheduler,
    TimeBudget,
    TrivialScheduler,
    available_schedulers,
    create_scheduler,
)

__version__ = "1.0.0"

__all__ = [
    "BlEstScheduler",
    "BspGreedyScheduler",
    "BspMachine",
    "BspSchedule",
    "Budget",
    "CilkScheduler",
    "ClassicalSchedule",
    "CommScheduleHillClimbing",
    "CommStep",
    "ComputationalDAG",
    "CostBreakdown",
    "EtfScheduler",
    "HDaggScheduler",
    "HillClimbingImprover",
    "IlpCommScheduleImprover",
    "IlpFullImprover",
    "IlpInitScheduler",
    "IlpPartialImprover",
    "LinearClusteringScheduler",
    "MachineSpec",
    "MultilevelPipeline",
    "MultilevelScheduler",
    "PipelineConfig",
    "ReproError",
    "ScheduleError",
    "ScheduleImprover",
    "ScheduleRequest",
    "ScheduleResult",
    "Scheduler",
    "SchedulerSpec",
    "SchedulingPipeline",
    "SchedulingService",
    "SimulatedAnnealingImprover",
    "SourceScheduler",
    "TimeBudget",
    "TrivialScheduler",
    "available_schedulers",
    "classical_to_bsp",
    "create_scheduler",
    "evaluate_cost",
    "lazy_comm_schedule",
    "__version__",
]
