#!/usr/bin/env python
"""Case study: scheduling fine-grained sparse matrix-vector multiplication.

This is the workload that motivates the paper's fine-grained DAG generator
(Appendix B.2, Figure 2): every nonzero of the matrix and every scalar
operation becomes a DAG node.  The example

1. shows the tiny 2x2 example of Figure 2 (coarse vs fine node counts),
2. generates a larger random SpMV instance,
3. schedules it with every baseline and with the framework pipeline for
   several values of the communication cost ``g``, and
4. prints a comparison table of schedule costs (lower is better).

Run with::

    python examples/spmv_scheduling.py
"""

from __future__ import annotations

from repro import PipelineConfig
from repro.api import MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService
from repro.dagdb import SparseMatrixPattern, build_spmv_dag


def figure2_example() -> None:
    """The 2x2 matrix of Figure 2: coarse-grained vs fine-grained size."""
    pattern = SparseMatrixPattern.from_coordinates(2, [(0, 0), (1, 0), (1, 1)])
    fine = build_spmv_dag(pattern, name="figure2_spmv")
    print("Figure 2 example (y = A*u with a 2x2 matrix, 3 nonzeros):")
    print("  coarse-grained representation: 3 nodes (A, u, y)")
    print(
        f"  fine-grained representation  : {fine.dag.num_nodes} nodes "
        f"({len(fine.nodes_with_role('input:A'))} matrix entries, "
        f"{len(fine.nodes_with_role('input:u'))} vector entries, "
        f"{len(fine.nodes_with_role('multiply'))} multiplications, "
        f"{len(fine.nodes_with_role('reduce'))} reductions)"
    )
    print()


def main() -> None:
    figure2_example()

    pattern = SparseMatrixPattern.random(14, 0.25, seed=7, ensure_diagonal=True)
    dag = build_spmv_dag(pattern).dag
    print(
        f"Random SpMV instance: {pattern.size}x{pattern.size} matrix, "
        f"{pattern.nnz} nonzeros -> DAG with {dag.num_nodes} nodes, "
        f"{dag.num_edges} edges, depth {dag.depth()}"
    )
    print()

    # one declarative spec per scheduler; the g-sweep is a batch of
    # requests answered by one service (process-parallel with workers=N)
    specs = {
        "cilk": SchedulerSpec("cilk", {"seed": 0}),
        "bl_est": SchedulerSpec("bl_est"),
        "etf": SchedulerSpec("etf"),
        "hdagg": SchedulerSpec("hdagg"),
        "framework": SchedulerSpec("framework", {"config": PipelineConfig.fast()}),
    }
    service = SchedulingService()

    header = f"{'g':>4} | " + " | ".join(f"{name:>10}" for name in specs)
    print(header)
    print("-" * len(header))
    for g in (1, 3, 5):
        machine = MachineSpec(num_procs=4, g=g, latency=5)
        results = service.solve_many(
            [
                ScheduleRequest(dag=dag, machine=machine, scheduler=spec)
                for spec in specs.values()
            ]
        )
        costs = dict(zip(specs, (result.cost for result in results)))
        row = f"{g:>4} | " + " | ".join(f"{costs[name]:>10.1f}" for name in specs)
        print(row)
    print()
    print(
        "The framework's advantage grows with g because the baselines ignore\n"
        "(or only coarsely model) communication volume -- the trend of Table 1."
    )


if __name__ == "__main__":
    main()
