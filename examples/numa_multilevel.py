#!/usr/bin/env python
"""Case study: NUMA-dominated scheduling and the multilevel algorithm (§7.2-7.3).

A conjugate-gradient computation (fine-grained DAG) is scheduled on machines
with a binary-tree NUMA hierarchy of increasing steepness Δ.  The example
compares

* the Cilk and HDagg baselines,
* the trivial one-processor schedule (the "is parallelism even worth it?"
  yardstick of §7.3),
* the framework's base pipeline, and
* the multilevel (coarsen-solve-refine) pipeline,

showing that the multilevel approach takes over once communication costs
dominate — the story of Figure 6 and Tables 2/3 of the paper.

Run with::

    python examples/numa_multilevel.py
"""

from __future__ import annotations

from repro import (
    BspMachine,
    CilkScheduler,
    HDaggScheduler,
    MultilevelPipeline,
    PipelineConfig,
    SchedulingPipeline,
)
from repro.core import BspSchedule
from repro.dagdb import SparseMatrixPattern, build_cg_dag


def main() -> None:
    pattern = SparseMatrixPattern.random(7, 0.3, seed=3, ensure_diagonal=True)
    dag = build_cg_dag(pattern, iterations=3).dag
    print(
        f"Conjugate gradient DAG: {dag.num_nodes} nodes, {dag.num_edges} edges, "
        f"depth {dag.depth()}, total work {dag.total_work:g}"
    )
    print()

    config = PipelineConfig.fast()
    base_pipeline = SchedulingPipeline(config)
    multilevel_pipeline = MultilevelPipeline(config)

    columns = ("cilk", "hdagg", "trivial", "framework", "multilevel")
    header = f"{'P':>3} {'delta':>6} | " + " | ".join(f"{c:>10}" for c in columns)
    print(header)
    print("-" * len(header))

    for num_procs in (8, 16):
        for delta in (2, 3, 4):
            machine = BspMachine.numa_hierarchy(num_procs, delta=delta, g=1, latency=5)
            costs = {
                "cilk": CilkScheduler(seed=0).schedule(dag, machine).cost(),
                "hdagg": HDaggScheduler().schedule(dag, machine).cost(),
                "trivial": BspSchedule.trivial(dag, machine).cost(),
                "framework": base_pipeline.schedule(dag, machine).cost(),
                "multilevel": multilevel_pipeline.schedule(dag, machine).cost(),
            }
            row = f"{num_procs:>3} {delta:>6} | " + " | ".join(
                f"{costs[c]:>10.1f}" for c in columns
            )
            print(row)
    print()
    print(
        "As delta grows the baselines degrade badly (they ignore the NUMA\n"
        "hierarchy), the base framework closes most of the gap, and for the\n"
        "steepest hierarchies the multilevel scheduler is the only method that\n"
        "stays competitive with -- or beats -- the trivial one-processor schedule."
    )


if __name__ == "__main__":
    main()
