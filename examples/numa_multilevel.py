#!/usr/bin/env python
"""Case study: NUMA-dominated scheduling and the multilevel algorithm (§7.2-7.3).

A conjugate-gradient computation (fine-grained DAG) is scheduled on machines
with a binary-tree NUMA hierarchy of increasing steepness Δ.  The example
compares

* the Cilk and HDagg baselines,
* the trivial one-processor schedule (the "is parallelism even worth it?"
  yardstick of §7.3),
* the framework's base pipeline, and
* the multilevel (coarsen-solve-refine) pipeline,

showing that the multilevel approach takes over once communication costs
dominate — the story of Figure 6 and Tables 2/3 of the paper.

Run with::

    python examples/numa_multilevel.py
"""

from __future__ import annotations

from repro import PipelineConfig
from repro.api import MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService
from repro.dagdb import SparseMatrixPattern, build_cg_dag


def main() -> None:
    pattern = SparseMatrixPattern.random(7, 0.3, seed=3, ensure_diagonal=True)
    dag = build_cg_dag(pattern, iterations=3).dag
    print(
        f"Conjugate gradient DAG: {dag.num_nodes} nodes, {dag.num_edges} edges, "
        f"depth {dag.depth()}, total work {dag.total_work:g}"
    )
    print()

    config = PipelineConfig.fast()
    specs = {
        "cilk": SchedulerSpec("cilk", {"seed": 0}),
        "hdagg": SchedulerSpec("hdagg"),
        "trivial": SchedulerSpec("trivial"),
        "framework": SchedulerSpec("framework", {"config": config}),
        "multilevel": SchedulerSpec("multilevel", {"config": config}),
    }
    service = SchedulingService()

    columns = tuple(specs)
    header = f"{'P':>3} {'delta':>6} | " + " | ".join(f"{c:>10}" for c in columns)
    print(header)
    print("-" * len(header))

    for num_procs in (8, 16):
        for delta in (2, 3, 4):
            machine = MachineSpec(num_procs, g=1, latency=5, numa_delta=delta)
            results = service.solve_many(
                [
                    ScheduleRequest(dag=dag, machine=machine, scheduler=spec)
                    for spec in specs.values()
                ]
            )
            costs = dict(zip(specs, (result.cost for result in results)))
            row = f"{num_procs:>3} {delta:>6} | " + " | ".join(
                f"{costs[c]:>10.1f}" for c in columns
            )
            print(row)
    print()
    print(
        "As delta grows the baselines degrade badly (they ignore the NUMA\n"
        "hierarchy), the base framework closes most of the gap, and for the\n"
        "steepest hierarchies the multilevel scheduler is the only method that\n"
        "stays competitive with -- or beats -- the trivial one-processor schedule."
    )


if __name__ == "__main__":
    main()
