#!/usr/bin/env python
"""Quickstart: schedule a small computational DAG on a BSP machine.

This example mirrors Figure 1 of the paper: a small two-layer DAG is
scheduled on two processors, and the resulting BSP schedule (supersteps,
per-processor computation phases and the communication phases in between)
is printed together with its cost breakdown.  The framework pipeline is then
compared against the Cilk and HDagg baselines.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BspMachine,
    CilkScheduler,
    HDaggScheduler,
    PipelineConfig,
    SchedulingPipeline,
)
from repro.core import ComputationalDAG
from repro.io import render_cost_table, render_schedule_text


def build_example_dag() -> ComputationalDAG:
    """A small DAG in the spirit of Figure 1 (9 operations in two layers)."""
    dag = ComputationalDAG(12, name="figure1_example")
    edges = [
        (0, 6), (1, 6), (1, 7), (2, 7), (3, 7), (4, 8), (5, 8),
        (6, 9), (7, 9), (7, 10), (8, 10), (8, 11),
    ]
    dag.add_edges(edges)
    # give the second layer a bit more work and heavier outputs
    for v in (6, 7, 8):
        dag.set_work(v, 3)
        dag.set_comm(v, 2)
    return dag


def main() -> None:
    dag = build_example_dag()
    machine = BspMachine.uniform(2, g=2, latency=3)
    print(f"DAG '{dag.name}': {dag.num_nodes} nodes, {dag.num_edges} edges")
    print(f"Machine: {machine.describe()}\n")

    pipeline = SchedulingPipeline(PipelineConfig.fast())
    result = pipeline.schedule_with_stages(dag, machine)

    print(render_schedule_text(result.schedule))
    print()

    schedules = {
        "cilk": CilkScheduler(seed=0).schedule(dag, machine),
        "hdagg": HDaggScheduler().schedule(dag, machine),
        "framework": result.schedule,
    }
    print(render_cost_table(schedules))
    print()
    print("Pipeline stage costs:")
    for name, cost in result.stages.initial.items():
        print(f"  initial ({name:<11s}): {cost:8.2f}")
    print(f"  after HC + HCcs      : {result.stages.after_local_search:8.2f}")
    print(f"  after ILP stage      : {result.stages.after_ilp_assignment:8.2f}")
    print(f"  final                : {result.stages.final:8.2f}")


if __name__ == "__main__":
    main()
