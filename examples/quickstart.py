#!/usr/bin/env python
"""Quickstart: schedule a small computational DAG on a BSP machine.

This example mirrors Figure 1 of the paper: a small two-layer DAG is
scheduled on two processors, and the resulting BSP schedule (supersteps,
per-processor computation phases and the communication phases in between)
is printed together with its cost breakdown.  The framework pipeline is then
compared against the Cilk and HDagg baselines.

Everything runs through the service API: each scheduler is a declarative
``SchedulerSpec`` inside a ``ScheduleRequest``, and one ``SchedulingService``
answers the whole batch (with the framework's per-stage cost trace on its
``ScheduleResult``).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BspMachine, PipelineConfig
from repro.api import ScheduleRequest, SchedulerSpec, SchedulingService
from repro.core import ComputationalDAG
from repro.io import render_cost_table, render_schedule_text


def build_example_dag() -> ComputationalDAG:
    """A small DAG in the spirit of Figure 1 (9 operations in two layers)."""
    dag = ComputationalDAG(12, name="figure1_example")
    edges = [
        (0, 6), (1, 6), (1, 7), (2, 7), (3, 7), (4, 8), (5, 8),
        (6, 9), (7, 9), (7, 10), (8, 10), (8, 11),
    ]
    dag.add_edges(edges)
    # give the second layer a bit more work and heavier outputs
    for v in (6, 7, 8):
        dag.set_work(v, 3)
        dag.set_comm(v, 2)
    return dag


def main() -> None:
    dag = build_example_dag()
    machine = BspMachine.uniform(2, g=2, latency=3)
    print(f"DAG '{dag.name}': {dag.num_nodes} nodes, {dag.num_edges} edges")
    print(f"Machine: {machine.describe()}\n")

    service = SchedulingService()
    specs = {
        "cilk": SchedulerSpec("cilk", {"seed": 0}),
        "hdagg": SchedulerSpec("hdagg"),
        "framework": SchedulerSpec("framework", {"config": PipelineConfig.fast()}),
    }
    results = service.solve_many(
        [
            ScheduleRequest(dag=dag, machine=machine, scheduler=spec)
            for spec in specs.values()
        ]
    )
    by_name = dict(zip(specs, results))

    framework = by_name["framework"]
    print(render_schedule_text(framework.to_schedule()))
    print()

    print(render_cost_table({name: r.to_schedule() for name, r in by_name.items()}))
    print()
    stages = framework.stages
    print("Pipeline stage costs:")
    for name, cost in stages.initial.items():
        print(f"  initial ({name:<11s}): {cost:8.2f}")
    print(f"  after HC + HCcs      : {stages.after_local_search:8.2f}")
    print(f"  after ILP stage      : {stages.after_ilp_assignment:8.2f}")
    print(f"  final                : {stages.final:8.2f}")


if __name__ == "__main__":
    main()
