#!/usr/bin/env python
"""Tour of the computational DAG database (paper Section 5, Appendix B).

The example walks through

1. the fine-grained generators (spmv, exp, cg, knn) and how their DAG sizes
   and shapes vary with the matrix size, density and iteration count,
2. the coarse-grained generators (operation-level DAGs of GraphBLAS-style
   algorithms),
3. the benchmark dataset construction (tiny/small/... at bench scale), and
4. exporting an instance in the hyperDAG file format and as GraphViz DOT.

Run with::

    python examples/dag_database_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.dagdb import (
    COARSE_GENERATORS,
    FINE_GENERATORS,
    SparseMatrixPattern,
    build_dataset,
    dataset_interval,
)
from repro.io import dag_to_dot, dumps_hyperdag, write_hyperdag


def tour_fine_generators() -> None:
    print("=== Fine-grained generators (one node per scalar operation) ===")
    pattern = SparseMatrixPattern.random(10, 0.25, seed=1, ensure_diagonal=True)
    print(f"input pattern: {pattern.size}x{pattern.size}, {pattern.nnz} nonzeros")
    for name, generator in FINE_GENERATORS.items():
        result = generator(pattern, 3)
        dag = result.dag
        print(
            f"  {name:<5s}: {dag.num_nodes:4d} nodes, {dag.num_edges:4d} edges, "
            f"depth {dag.depth():3d}, total work {dag.total_work:g}"
        )
    print()


def tour_coarse_generators() -> None:
    print("=== Coarse-grained generators (one node per container operation) ===")
    for name, generator in COARSE_GENERATORS.items():
        dag = generator(5)
        print(
            f"  {name:<10s}: {dag.num_nodes:3d} nodes, {dag.num_edges:3d} edges, "
            f"depth {dag.depth():3d}"
        )
    print()


def tour_datasets() -> None:
    print("=== Benchmark datasets (bench scale) ===")
    for dataset in ("tiny", "small", "medium"):
        low, high = dataset_interval(dataset, "bench")
        instances = build_dataset(dataset, scale="bench")
        sizes = sorted(inst.num_nodes for inst in instances)
        print(
            f"  {dataset:<7s}: target interval [{low}, {high}], "
            f"{len(instances)} instances, sizes {sizes[0]}..{sizes[-1]}"
        )
    paper_low, paper_high = dataset_interval("large", "paper")
    print(f"  (at paper scale the 'large' interval is [{paper_low}, {paper_high}])")
    print()


def tour_export() -> None:
    print("=== Exporting instances ===")
    pattern = SparseMatrixPattern.from_coordinates(2, [(0, 0), (1, 0), (1, 1)])
    dag = FINE_GENERATORS["spmv"](pattern).dag
    text = dumps_hyperdag(dag)
    print(f"hyperDAG serialisation of the Figure 2 example ({dag.num_nodes} nodes):")
    print("  " + "\n  ".join(text.splitlines()[:6]) + "\n  ...")
    with tempfile.TemporaryDirectory() as tmp:
        hyperdag_path = Path(tmp) / "spmv.hdag"
        dot_path = Path(tmp) / "spmv.dot"
        write_hyperdag(dag, hyperdag_path)
        dot_path.write_text(dag_to_dot(dag))
        print(f"  wrote {hyperdag_path.name} ({hyperdag_path.stat().st_size} bytes) "
              f"and {dot_path.name} ({dot_path.stat().st_size} bytes)")
    print()


def main() -> None:
    tour_fine_generators()
    tour_coarse_generators()
    tour_datasets()
    tour_export()


if __name__ == "__main__":
    main()
