"""Out-of-core pipeline benchmarks: streaming generation, mmap load, quotient fill.

Three measurements, one per leg of the out-of-core DAG pipeline:

* **generation** — peak RSS (``ru_maxrss``) of producing a million-node
  stencil ``.hdagb`` file, streamed through
  :class:`~repro.io.hdagb.StreamingDagWriter` (spilled edge blocks,
  bounded memory) vs materialising the whole
  :class:`~repro.core.dag.ComputationalDAG` first and writing it out.
  Each phase runs in its own subprocess because ``ru_maxrss`` is monotone
  within a process.  The comparison is differential: both phases must
  produce byte-identical files (same content fingerprint) before their
  peaks are recorded.
* **load** — wall time of opening a 10^5-node instance from the ``.hdag``
  text format (full parse) vs the memory-mapped ``.hdagb`` binary
  (header + checksum only; arrays are zero-copy views).  This is the
  latency every worker pays per task when a dispatcher fans a stored
  instance out.
* **symbolic_fill** — the quotient-graph (row-merge-tree) symbolic
  factorisation vs the historical up-looking per-column union pass on
  tridiagonal patterns at 10^5 and 10^6 columns, bit-identical outputs
  asserted, which is the pass that gates elimination-DAG generation at
  scale.

Results (timings, peaks and speedups) are printed, persisted under
``benchmarks/results/bench_outofcore.json`` and mirrored into the stable
per-PR record ``BENCH_<n>.json`` via :func:`_bench_utils.save_bench_root`.

Run directly (``PYTHONPATH=src python benchmarks/bench_outofcore.py``) or
through pytest; the pytest entry points assert the acceptance floors
(streamed peak well below the materialised peak, >= 50x mmap load, >= 10x
quotient fill at 10^6 columns), each overridable via environment variables
for loaded CI runners.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for direct execution
from _bench_utils import save_bench_root, save_json

from repro.core import kernels
from repro.dagdb import SparseMatrixPattern
from repro.io import load_dag
from repro.io.hyperdag import read_hyperdag, write_hyperdag

#: million-node space-time stencil: side^2 * steps nodes
GENERATION_SIDE = int(os.environ.get("REPRO_BENCH_OOC_SIDE", "500"))
GENERATION_STEPS = int(os.environ.get("REPRO_BENCH_OOC_STEPS", "4"))
#: streamed peak RSS must stay below the materialised peak by this factor
GENERATION_MEMORY_FACTOR = float(os.environ.get("REPRO_BENCH_OOC_MEM_FACTOR", "2.0"))
#: 10^5-node instance for the load-latency comparison
LOAD_SIDE, LOAD_STEPS = 100, 10
MMAP_ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_MMAP_SPEEDUP", "50.0"))
FILL_SIZES = (100_000, 1_000_000)
FILL_ACCEPTANCE_SIZE = 1_000_000
FILL_ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FILL_SPEEDUP", "10.0"))
#: stacked-PR sequence number of the stable BENCH_<n>.json record
BENCH_PR_NUMBER = int(os.environ.get("REPRO_BENCH_PR", "8"))

_SRC_DIR = Path(__file__).parent.parent / "src"

# one subprocess per generation phase: ru_maxrss never decreases, so the
# streamed and materialised paths cannot share an interpreter
_PHASE_TEMPLATE = """\
import json, resource, sys, time
sys.path.insert(0, {src!r})
from repro.dagdb.stream import stream_generate
from repro.dagdb.structured import build_stencil2d_dag
from repro.io.hdagb import write_hdagb

t0 = time.perf_counter()
fingerprint = None
if {kind!r} == "streamed":
    fingerprint = stream_generate(
        {out!r}, "stencil2d", side={side}, steps={steps}, tmp_dir={tmp!r},
        block_edges={block_edges},
    )
elif {kind!r} == "inmemory":
    dag = build_stencil2d_dag({side}, {steps}).dag
    fingerprint = write_hdagb(dag, {out!r})
elapsed = time.perf_counter() - t0
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({{
    "fingerprint": fingerprint,
    "seconds": elapsed,
    "peak_rss_mb": peak_kb / 1024.0,
}}))
"""


def _run_generation_phase(kind: str, out: Path, tmp: Path) -> dict:
    code = _PHASE_TEMPLATE.format(
        src=str(_SRC_DIR),
        kind=kind,
        out=str(out),
        side=GENERATION_SIDE,
        steps=GENERATION_STEPS,
        tmp=str(tmp),
        block_edges=1 << 18,
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def bench_generation() -> dict:
    """Peak-RSS comparison: streamed vs materialised million-node generation."""
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        # the import footprint of the interpreter is the same in both
        # phases; peaks are compared above it so the ratio measures the
        # pipeline, not numpy's shared libraries
        baseline = _run_generation_phase("baseline", tmp / "unused", tmp)
        streamed = _run_generation_phase("streamed", tmp / "streamed.hdagb", tmp)
        materialised = _run_generation_phase("inmemory", tmp / "inmemory.hdagb", tmp)
        streamed_bytes = (tmp / "streamed.hdagb").stat().st_size
        if (tmp / "streamed.hdagb").read_bytes() != (tmp / "inmemory.hdagb").read_bytes():
            raise AssertionError("streamed and materialised .hdagb files differ")
        dag = load_dag(tmp / "streamed.hdagb")
        base_mb = baseline["peak_rss_mb"]
        streamed_mb = max(streamed["peak_rss_mb"] - base_mb, 1e-9)
        inmemory_mb = max(materialised["peak_rss_mb"] - base_mb, 1e-9)
        record = {
            "num_nodes": dag.num_nodes,
            "num_edges": dag.num_edges,
            "file_mb": streamed_bytes / 2**20,
            "fingerprint": streamed["fingerprint"],
            "baseline_rss_mb": base_mb,
            "streamed_peak_rss_mb": streamed_mb,
            "inmemory_peak_rss_mb": inmemory_mb,
            "streamed_s": streamed["seconds"],
            "inmemory_s": materialised["seconds"],
            # the headline figure: how much smaller the streamed peak is
            "speedup": inmemory_mb / streamed_mb,
        }
        del dag  # release the mmap before the directory is removed
    return record


def bench_load() -> dict:
    """Load latency: .hdag text parse vs zero-copy .hdagb mmap."""
    from repro.dagdb.structured import build_stencil2d_dag
    from repro.io.hdagb import write_hdagb

    dag = build_stencil2d_dag(LOAD_SIDE, LOAD_STEPS).dag
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        write_hyperdag(dag, tmp / "dag.hdag")
        write_hdagb(dag, tmp / "dag.hdagb")

        text_s = min(
            _timed(lambda: read_hyperdag(tmp / "dag.hdag")) for _ in range(3)
        )
        mmap_s = min(
            _timed(lambda: load_dag(tmp / "dag.hdagb")) for _ in range(20)
        )
        from repro.api.request import dag_fingerprint

        parsed = read_hyperdag(tmp / "dag.hdag")
        mapped = load_dag(tmp / "dag.hdagb")
        assert dag_fingerprint(parsed) == dag_fingerprint(mapped)
        record = {
            "num_nodes": dag.num_nodes,
            "num_edges": dag.num_edges,
            "text_mb": (tmp / "dag.hdag").stat().st_size / 2**20,
            "binary_mb": (tmp / "dag.hdagb").stat().st_size / 2**20,
            "text_parse_s": text_s,
            "mmap_load_s": mmap_s,
            "speedup": text_s / mmap_s,
        }
        del mapped
    return record


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_symbolic_fill() -> dict:
    """Quotient-graph vs up-looking symbolic fill on tridiagonal patterns.

    Times the two dispatched kernels on the same pre-symmetrised CSR
    arrays — the symmetrisation is shared by both methods inside
    :func:`symbolic_fill_csr`, so including it would only dilute the
    kernel comparison.
    """
    cases = []
    for size in FILL_SIZES:
        pattern = SparseMatrixPattern.tridiagonal(size)
        sym = pattern.symmetrized()
        t0 = time.perf_counter()
        q_indptr, q_indices, q_parents = kernels.symbolic_fill_quotient(
            sym.indptr, sym.indices, sym.size
        )
        quotient_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        u_indptr, u_indices, u_parents = kernels.symbolic_fill(
            sym.indptr, sym.indices, sym.size
        )
        uplooking_s = time.perf_counter() - t0
        assert np.array_equal(q_indptr, u_indptr)
        assert np.array_equal(q_indices, u_indices)
        assert np.array_equal(q_parents, u_parents)
        cases.append(
            {
                "matrix_size": size,
                "fill_nnz": int(q_indptr[-1]),
                "quotient_s": quotient_s,
                "uplooking_s": uplooking_s,
                "speedup": uplooking_s / quotient_s,
            }
        )
    return {"kernel_backend": kernels.get_backend(), "cases": cases}


_CACHE: dict[str, dict] = {}


def _section(name: str, fn) -> dict:
    if name not in _CACHE:
        _CACHE[name] = fn()
    return _CACHE[name]


# ---------------------------------------------------------------------- #
# pytest entry points (acceptance floors)
# ---------------------------------------------------------------------- #
def test_streamed_generation_bounded_memory():
    record = _section("generation", bench_generation)
    # steps sweeps plus the initial grid layer
    assert record["num_nodes"] == GENERATION_SIDE**2 * (GENERATION_STEPS + 1)
    assert record["num_nodes"] >= 1_000_000
    assert record["speedup"] >= GENERATION_MEMORY_FACTOR, (
        f"streamed peak {record['streamed_peak_rss_mb']:.0f} MB is not "
        f"{GENERATION_MEMORY_FACTOR}x below the materialised "
        f"{record['inmemory_peak_rss_mb']:.0f} MB"
    )


def test_mmap_load_speedup():
    record = _section("load", bench_load)
    assert record["speedup"] >= MMAP_ACCEPTANCE_SPEEDUP, (
        f"mmap load is only {record['speedup']:.1f}x faster than the text "
        f"parse (floor {MMAP_ACCEPTANCE_SPEEDUP}x)"
    )


def test_quotient_fill_speedup():
    record = _section("symbolic_fill", bench_symbolic_fill)
    case = next(
        c for c in record["cases"] if c["matrix_size"] == FILL_ACCEPTANCE_SIZE
    )
    assert case["speedup"] >= FILL_ACCEPTANCE_SPEEDUP, (
        f"quotient fill is only {case['speedup']:.1f}x faster at "
        f"{FILL_ACCEPTANCE_SIZE} columns (floor {FILL_ACCEPTANCE_SPEEDUP}x)"
    )


def main() -> None:
    generation = _section("generation", bench_generation)
    print(
        f"generation ({generation['num_nodes']} nodes, "
        f"{generation['file_mb']:.0f} MB file): streamed peak "
        f"{generation['streamed_peak_rss_mb']:.0f} MB vs materialised "
        f"{generation['inmemory_peak_rss_mb']:.0f} MB "
        f"({generation['speedup']:.1f}x smaller)"
    )
    load = _section("load", bench_load)
    print(
        f"load ({load['num_nodes']} nodes): text parse {load['text_parse_s']:.3f} s "
        f"vs mmap {load['mmap_load_s'] * 1e3:.2f} ms ({load['speedup']:.0f}x)"
    )
    fill = _section("symbolic_fill", bench_symbolic_fill)
    for case in fill["cases"]:
        print(
            f"symbolic fill (n={case['matrix_size']}): quotient "
            f"{case['quotient_s']:.3f} s vs up-looking {case['uplooking_s']:.3f} s "
            f"({case['speedup']:.1f}x)"
        )
    payload = {"generation": generation, "load": load, "symbolic_fill": fill}
    save_json("bench_outofcore", payload)
    path = save_bench_root(BENCH_PR_NUMBER, {"outofcore": payload})
    print(f"recorded -> {path}")


if __name__ == "__main__":
    main()
