"""Benchmark target for Tables 13 and 14: multilevel coarsening-ratio study.

Runs the multilevel scheduler with coarsening ratios 0.15 and 0.30 (and the
better of the two, ``Copt``) on the NUMA grid and reports its improvement
over the baselines (Table 13) and its cost ratio to the base framework
(Table 14).
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import (
    MachineSpec,
    aggregate_improvement,
    table13_multilevel_vs_baselines,
    table14_multilevel_vs_base,
)
from repro.schedulers import MultilevelPipeline, PipelineConfig


def test_table13_14_multilevel_ratios(benchmark, multilevel_ratio_records, representative_instance):
    machine = MachineSpec(8, g=1, latency=5, numa_delta=4).build()
    pipeline = MultilevelPipeline(PipelineConfig.fast(), coarsening_ratios=(0.3,))
    benchmark.pedantic(
        lambda: pipeline.schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    values13, text13 = table13_multilevel_vs_baselines(multilevel_ratio_records)
    save_table("table13_multilevel_vs_baselines", text13)
    values14, text14 = table14_multilevel_vs_base(multilevel_ratio_records)
    save_table("table14_multilevel_vs_base", text14)

    # Copt is by construction at least as good as either single ratio
    for cell in values13["ml_copt"]:
        assert values13["ml_copt"][cell][0] >= values13["ml_c15"][cell][0] - 1e-9
        assert values13["ml_copt"][cell][0] >= values13["ml_c30"][cell][0] - 1e-9

    # the multilevel scheduler clearly beats Cilk in the NUMA regime
    assert aggregate_improvement(multilevel_ratio_records, "ml_copt", "cilk") > 0.0

    # Table 14 trend: relative to the base scheduler, the multilevel approach
    # is more useful at delta=4 than at delta=2
    steep_cells = [cell for cell in values14["ml_copt"] if cell.endswith("D=4")]
    mild_cells = [cell for cell in values14["ml_copt"] if cell.endswith("D=2")]
    if steep_cells and mild_cells:
        steep = min(values14["ml_copt"][cell] for cell in steep_cells)
        mild = min(values14["ml_copt"][cell] for cell in mild_cells)
        assert steep <= mild + 0.25
