"""Speedup-trajectory report over the per-PR ``BENCH_<n>.json`` records.

Every PR that touches a hot path records its kernel timings in a stable
``BENCH_<n>.json`` at the repo root (see ``_bench_utils.save_bench_root``).
This module diffs all of those records into one per-kernel trajectory table
(markdown to stdout): one row per kernel/case, one column per PR, each cell
the recorded speedup of the vectorized path over its retained seed
reference.  A kernel that regresses between PRs is immediately visible in
review; CI appends the table to the workflow summary.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py [repo_root]

The payload walker is schema-agnostic: any dict carrying a ``"speedup"``
key becomes a row, labelled by its path through the record; list entries
are identified by their most specific size-like field (``num_nodes``,
``nnz``, ...), so rows line up across PRs even when case lists grow.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

__all__ = [
    "collect_trajectory",
    "collect_backends",
    "collect_store_hit_rates",
    "render_markdown",
    "main",
]

#: fields (in priority order) used to label a list entry so that the same
#: case lines up across PRs
_IDENTITY_FIELDS = ("num_nodes", "nnz", "matrix_size", "num_contractions", "points")


def _entry_label(payload: dict) -> str:
    for field in _IDENTITY_FIELDS:
        if field in payload:
            return f"{field}={payload[field]}"
    return ""


def _walk(payload, path: tuple[str, ...], out: dict[str, float]) -> None:
    if isinstance(payload, dict):
        if "speedup" in payload and isinstance(payload["speedup"], (int, float)):
            label = "/".join(path) or "(root)"
            out[label] = float(payload["speedup"])
        for key, value in payload.items():
            if key == "speedup":
                continue
            _walk(value, path + (str(key),), out)
    elif isinstance(payload, list):
        tags = [
            _entry_label(value) if isinstance(value, dict) else str(index)
            for index, value in enumerate(payload)
        ]
        # two entries sharing the identity field (e.g. same num_nodes,
        # different max_steps) must not collapse into one row: duplicate
        # labels get a stable occurrence-index suffix
        duplicated = {tag for tag in tags if tag and tags.count(tag) > 1}
        occurrence: dict[str, int] = {}
        for index, (value, tag) in enumerate(zip(payload, tags)):
            if tag in duplicated:
                nth = occurrence.get(tag, 0)
                occurrence[tag] = nth + 1
                tag = f"{tag}#{nth}"
            _walk(value, path[:-1] + (f"{path[-1] if path else 'list'}[{tag or index}]",), out)


def collect_trajectory(root: Path) -> dict[int, dict[str, float]]:
    """Per-PR ``{kernel label -> speedup}`` maps from every ``BENCH_*.json``."""
    trajectory: dict[int, dict[str, float]] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if not match:
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            continue
        if record.get("schema_version") != 1:
            continue
        speedups: dict[str, float] = {}
        _walk(record.get("benchmarks", {}), (), speedups)
        trajectory[int(match.group(1))] = speedups
    return trajectory


def _find_backend(payload) -> str | None:
    """First ``"kernel_backend"`` string anywhere in a record payload."""
    if isinstance(payload, dict):
        value = payload.get("kernel_backend")
        if isinstance(value, str):
            return value
        for child in payload.values():
            found = _find_backend(child)
            if found is not None:
                return found
    elif isinstance(payload, list):
        for child in payload:
            found = _find_backend(child)
            if found is not None:
                return found
    return None


def collect_backends(root: Path) -> dict[int, str]:
    """Per-PR kernel backend (``numpy`` / ``numba``) from every ``BENCH_*.json``.

    PRs predating the kernel-dispatch layer record no backend; they are
    simply absent from the result (rendered as a dash).
    """
    backends: dict[int, str] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if not match:
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            continue
        if record.get("schema_version") != 1:
            continue
        backend = _find_backend(record.get("benchmarks", {}))
        if backend is not None:
            backends[int(match.group(1))] = backend
    return backends


def collect_store_hit_rates(root: Path) -> dict[int, float]:
    """Per-PR warm-store hit rate from every ``BENCH_*.json``.

    Reads the ``store_resume`` section written by ``bench_store_resume.py``
    (store hits over total requests on a warm re-run of the benchmark
    grid).  PRs predating the persistent store record no rate and are
    simply absent from the result (rendered as a dash).
    """
    rates: dict[int, float] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if not match:
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            continue
        if record.get("schema_version") != 1:
            continue
        section = record.get("benchmarks", {}).get("store_resume")
        if isinstance(section, dict) and isinstance(
            section.get("hit_rate"), (int, float)
        ):
            rates[int(match.group(1))] = float(section["hit_rate"])
    return rates


def render_markdown(
    trajectory: dict[int, dict[str, float]],
    backends: dict[int, str] | None = None,
    store_hit_rates: dict[int, float] | None = None,
) -> str:
    """One markdown table: kernels as rows, PRs as columns, speedups as cells.

    When ``backends`` is given, a leading row shows which kernel backend
    (:mod:`repro.core.kernels`) produced each PR's numbers — a numba column
    and a numpy column are not comparable cell-for-cell.  When
    ``store_hit_rates`` is given, another leading row shows the warm-store
    hit rate per PR (anything under 100% means resume broke).
    """
    if not trajectory:
        return "No BENCH_*.json records found."
    prs = sorted(trajectory)
    kernels = sorted({kernel for per_pr in trajectory.values() for kernel in per_pr})
    lines = [
        "### Kernel speedup trajectory (vectorized vs retained seed reference)",
        "",
        "| kernel | " + " | ".join(f"PR {pr}" for pr in prs) + " |",
        "|---" * (len(prs) + 1) + "|",
    ]
    if backends:
        cells = [backends.get(pr, "—") for pr in prs]
        lines.append("| *(kernel backend)* | " + " | ".join(cells) + " |")
    if store_hit_rates:
        cells = [
            f"{store_hit_rates[pr]:.0%}" if pr in store_hit_rates else "—"
            for pr in prs
        ]
        lines.append("| *(warm-store hit rate)* | " + " | ".join(cells) + " |")
    for kernel in kernels:
        cells = []
        for pr in prs:
            value = trajectory[pr].get(kernel)
            cells.append(f"{value:.1f}x" if value is not None else "—")
        lines.append(f"| {kernel} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    print(
        render_markdown(
            collect_trajectory(root),
            collect_backends(root),
            collect_store_hit_rates(root),
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
