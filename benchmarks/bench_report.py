"""Speedup-trajectory report over the per-PR ``BENCH_<n>.json`` records.

Every PR that touches a hot path records its kernel timings in a stable
``BENCH_<n>.json`` at the repo root (see ``_bench_utils.save_bench_root``).
This script diffs all of those records into one per-kernel trajectory table
(markdown to stdout): one row per kernel/case, one column per PR, each cell
the recorded speedup of the vectorized path over its retained seed
reference.  A kernel that regresses between PRs is immediately visible in
review; CI appends the table to the workflow summary.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py [repo_root]

The record parsing (payload walker, label dedup, backend / hit-rate
scans) lives in the importable :mod:`repro.analysis.benchdata` module —
shared with the HTML report subsystem (:mod:`repro.analysis.report`), so
both tools agree on row identity across PRs.  This file keeps only the
markdown rendering and the CLI entry point.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.analysis.benchdata import (
        collect_backends,
        collect_store_hit_rates,
        collect_trajectory,
    )
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.benchdata import (
        collect_backends,
        collect_store_hit_rates,
        collect_trajectory,
    )

__all__ = [
    "collect_trajectory",
    "collect_backends",
    "collect_store_hit_rates",
    "render_markdown",
    "main",
]


def render_markdown(
    trajectory: dict[int, dict[str, float]],
    backends: dict[int, str] | None = None,
    store_hit_rates: dict[int, float] | None = None,
) -> str:
    """One markdown table: kernels as rows, PRs as columns, speedups as cells.

    When ``backends`` is given, a leading row shows which kernel backend
    (:mod:`repro.core.kernels`) produced each PR's numbers — a numba column
    and a numpy column are not comparable cell-for-cell.  When
    ``store_hit_rates`` is given, another leading row shows the warm-store
    hit rate per PR (anything under 100% means resume broke).
    """
    if not trajectory:
        return "No BENCH_*.json records found."
    prs = sorted(trajectory)
    kernels = sorted({kernel for per_pr in trajectory.values() for kernel in per_pr})
    lines = [
        "### Kernel speedup trajectory (vectorized vs retained seed reference)",
        "",
        "| kernel | " + " | ".join(f"PR {pr}" for pr in prs) + " |",
        "|---" * (len(prs) + 1) + "|",
    ]
    if backends:
        cells = [backends.get(pr, "—") for pr in prs]
        lines.append("| *(kernel backend)* | " + " | ".join(cells) + " |")
    if store_hit_rates:
        cells = [
            f"{store_hit_rates[pr]:.0%}" if pr in store_hit_rates else "—"
            for pr in prs
        ]
        lines.append("| *(warm-store hit rate)* | " + " | ".join(cells) + " |")
    for kernel in kernels:
        cells = []
        for pr in prs:
            value = trajectory[pr].get(kernel)
            cells.append(f"{value:.1f}x" if value is not None else "—")
        lines.append(f"| {kernel} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    print(
        render_markdown(
            collect_trajectory(root),
            collect_backends(root),
            collect_store_hit_rates(root),
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
