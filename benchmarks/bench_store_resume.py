"""Benchmark: cold vs warm persistent-store experiment grids (repro.store).

Runs the same small experiment grid twice against one content-addressed
result store (:class:`repro.store.ResultStore`):

* **cold** — the store is empty; every request is computed and persisted;
* **warm** — a fresh runner re-runs the identical grid against the filled
  store, which must answer every request from disk (zero scheduler
  invocations) and reproduce the rendered table byte-for-byte.

The recorded payload keeps the cold/warm wall-clock times, their ratio
(``speedup`` — what resuming a killed grid run saves), and the warm-run
store **hit rate** (store hits / requests; 1.0 by construction when resume
works).  Results are persisted under ``benchmarks/results/`` and mirrored
into the stable per-PR record ``BENCH_<n>.json`` at the repo root, where
``bench_report.py`` renders the hit rate as a per-PR row.

Run directly (``PYTHONPATH=src python benchmarks/bench_store_resume.py``)
or through pytest; the pytest entry asserts the resume contract (zero warm
misses, byte-identical tables) rather than a wall-clock floor, so shared
CI runners cannot flake it.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for direct execution
from _bench_utils import save_bench_root, save_json

from repro.analysis.experiments import ExperimentRunner, run_grid
from repro.analysis.tables import table1_no_numa_improvements
from repro.core.machine import MachineSpec
from repro.dagdb import build_dataset
from repro.schedulers.pipeline import PipelineConfig

#: stacked-PR sequence number of the stable BENCH_<n>.json record
BENCH_PR_NUMBER = int(os.environ.get("REPRO_BENCH_PR", "7"))

#: budget-free configuration: deterministic schedulers, replayable bit-for-bit
BUDGET_FREE = PipelineConfig(
    use_ilp=False, use_comm_ilp=False, local_search_seconds=None
)


def _grid():
    instances = build_dataset("small", scale="bench", include_coarse=False)[:3]
    specs = [MachineSpec(p, g, 5.0) for p in (4, 8) for g in (1.0, 5.0)]
    return instances, specs


def run_benchmark(store_root: str | Path) -> dict:
    """Cold + warm grid runs against ``store_root``; returns the payload."""
    instances, specs = _grid()

    cold_runner = ExperimentRunner(config=BUDGET_FREE, store=store_root)
    start = time.perf_counter()
    cold_records = run_grid(cold_runner, instances, specs)
    cold_s = time.perf_counter() - start
    cold_info = cold_runner.service.cache_info()

    warm_runner = ExperimentRunner(config=BUDGET_FREE, store=store_root)
    start = time.perf_counter()
    warm_records = run_grid(warm_runner, instances, specs)
    warm_s = time.perf_counter() - start
    warm_info = warm_runner.service.cache_info()

    _, cold_table = table1_no_numa_improvements(cold_records)
    _, warm_table = table1_no_numa_improvements(warm_records)
    requests = warm_info["hits"] + warm_info["misses"]
    return {
        "instances": len(instances),
        "machine_points": len(specs),
        "requests": requests,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "cold_misses": cold_info["misses"],
        "warm_misses": warm_info["misses"],
        "store_hits": warm_info["store_hits"],
        "hit_rate": warm_info["store_hits"] / requests if requests else 0.0,
        "tables_byte_identical": warm_table.encode() == cold_table.encode(),
    }


# ---------------------------------------------------------------------- #
# pytest entry points (the resume contract, not wall-clock)
# ---------------------------------------------------------------------- #
def test_warm_store_resume_contract(tmp_path):
    payload = run_benchmark(tmp_path)
    assert payload["warm_misses"] == 0
    assert payload["hit_rate"] == 1.0
    assert payload["tables_byte_identical"] is True
    assert payload["cold_misses"] == payload["requests"]


# ---------------------------------------------------------------------- #
def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as root:
        payload = run_benchmark(root)
    print(
        f"store resume: {payload['requests']} requests, "
        f"cold {payload['cold_s']:.2f}s -> warm {payload['warm_s']:.2f}s "
        f"({payload['speedup']:.1f}x), hit rate {payload['hit_rate']:.0%}, "
        f"tables byte-identical: {payload['tables_byte_identical']}"
    )
    save_json("bench_store_resume", payload)
    save_bench_root(BENCH_PR_NUMBER, {"store_resume": payload})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
