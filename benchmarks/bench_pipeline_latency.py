"""Single-solve latency benchmarks: fan-out, pass fronts, PK coarsening.

Three sections, one per piece of the latency tentpole:

* **init_fanout** — the pipeline's per-initialiser HC + HCcs chains fanned
  over a thread pool (``PipelineConfig.init_workers``) vs the serial walk.
  Every timed pair first proves bit-identical output (stage trace and
  final assignment), so the fan-out is wall-clock-only by construction.
  Thread fan-out cannot win on a single-CPU host; the recorded entries
  carry ``cpu_count`` so the trajectory table stays interpretable and the
  pytest floor is skipped when only one CPU is available.
* **hccs_fronts** — the batched pass fronts of
  :func:`repro.core.kernels.hccs_pass_fronts` vs the serial window walk
  (forced through a huge ``max_steps`` cap, which pins the exact
  move-for-move serial path).  The instance is a shuffled pipeline-layered
  DAG: narrow communication windows scattered over thousands of supersteps
  in scan order, the shape where row-disjoint fronts genuinely batch
  (hundreds of windows per kernel call).  On layer-ordered numbering the
  windows chain-overlap and the relative serial-tail guard falls back —
  that degenerate shape is covered by the never-slower guard tests in
  ``tests/test_kernels.py``, not timed here.
* **pk_coarsening** — exact-DFS contraction probes vs the Pearce–Kelly
  dynamic order on dense DAGs, where the plain DFS re-walks large
  descendant sets per contraction.  Decisions are asserted identical
  before timing; the growth factor across a size doubling must stay below
  the DFS curve.

Results are printed, persisted under ``benchmarks/results/`` and mirrored
into the per-PR record ``BENCH_<n>.json`` (every entry carries a
``speedup`` plus ``num_nodes`` identity so ``bench_report.py`` renders the
rows automatically).

Run directly (``PYTHONPATH=src python benchmarks/bench_pipeline_latency.py``)
or through pytest; shared CI runners can lower the acceptance floors via
the ``REPRO_BENCH_MIN_*`` knobs so load spikes don't gate PRs.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for direct execution
from _bench_utils import save_bench_root, save_json
from bench_dag_kernels import build_layered_dag
from bench_hc_refinement import _level_schedule

from repro.core import BspMachine, ComputationalDAG, DagBuilder, csr, kernels
from repro.schedulers import PipelineConfig, SchedulingPipeline, coarsen_dag
from repro.schedulers.base import Budget, Scheduler
from repro.schedulers.comm_hill_climbing import CommScheduleHillClimbing
from repro.schedulers.registry import create_scheduler

BENCH_PR_NUMBER = int(os.environ.get("REPRO_BENCH_PR", "9"))

#: instance size for the fan-out section; the acceptance-scale run uses
#: 100k nodes (the O(n^2) greedy initialiser then dominates at ~2 min per
#: solve), the default keeps the benchmark CI-friendly
FANOUT_NODES = int(os.environ.get("REPRO_BENCH_PIPELINE_NODES", "20000"))
FANOUT_WORKERS = int(os.environ.get("REPRO_BENCH_PIPELINE_WORKERS", "4"))
FANOUT_PROCS = 4
#: fan-out floor on a quiet multi-core machine (CI can lower it); the
#: pytest floor is skipped outright when the host has a single CPU
FANOUT_ACCEPTANCE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_INIT_FANOUT_SPEEDUP", "1.0")
)
#: (num_nodes, num_layers) for the pass-front comparison
FRONT_CASES = ((30_000, 3_000),)
FRONT_PROCS = 8
#: never-slower floor for the batched fronts (quiet machine: ~1.7x)
FRONT_ACCEPTANCE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_FRONT_SPEEDUP", "1.0")
)
#: (num_nodes, edge density) ladder for the coarsening growth curve; the
#: largest size carries the DFS-vs-PK acceptance assertion
PK_CASES = ((150, 0.15), (300, 0.15))
#: PK must beat the exact DFS at the largest dense size (quiet: >= 3x)
PK_ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_PK_SPEEDUP", "1.0"))
#: PK's time growth across the size doubling must stay below this fraction
#: of the DFS growth (quiet machine: ~0.5)
PK_GROWTH_FRACTION = float(os.environ.get("REPRO_BENCH_MAX_PK_GROWTH_FRACTION", "1.0"))


# ---------------------------------------------------------------------- #
# instance builders
# ---------------------------------------------------------------------- #
def build_shuffled_pipeline_dag(
    num_nodes: int, num_layers: int, out_degree: int = 2, seed: int = 0
) -> ComputationalDAG:
    """Deep pipeline DAG with randomly permuted node numbering.

    Every node in layer ``L+1`` gets one *anchor* predecessor in layer
    ``L`` (so its level equals its layer and the communication windows
    stay narrow — a handful of supersteps out of thousands), plus skip
    edges one and three layers ahead.  Node ids are then shuffled: the
    HCcs scan order visits windows from distant supersteps back to back,
    which is exactly when the scan-order-greedy row-disjoint fronts of
    :func:`repro.core.kernels.hccs_pass_fronts` grow to hundreds of
    windows per batched call.  (Layer-ordered numbering instead yields
    chain-overlapping intervals where only the first window can ever join
    the front — the guard's fallback territory.)
    """
    rng = np.random.default_rng(seed)
    per = num_nodes // num_layers
    num_nodes = per * num_layers
    perm = rng.permutation(num_nodes)
    work = np.empty(num_nodes)
    comm = np.empty(num_nodes)
    work[perm] = rng.integers(1, 6, size=num_nodes).astype(np.float64)
    comm[perm] = rng.integers(1, 4, size=num_nodes).astype(np.float64)
    builder = DagBuilder(name=f"shuffled_pipeline_{num_nodes}")
    builder.add_nodes_array(work, comm)
    starts = np.arange(num_layers + 1) * per
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for layer in range(num_layers - 1):
        layer_nodes = np.arange(starts[layer], starts[layer + 1])
        sources.append(rng.integers(starts[layer], starts[layer + 1], size=per))
        targets.append(np.arange(starts[layer + 1], starts[layer + 2]))
        for gap in (1, 3):
            if layer + gap >= num_layers:
                continue
            src = np.repeat(layer_nodes, out_degree)
            sources.append(src)
            targets.append(
                rng.integers(starts[layer + gap], starts[layer + gap + 1], size=src.size)
            )
    builder.add_edges_array(
        *csr.dedupe_edges(
            num_nodes, perm[np.concatenate(sources)], perm[np.concatenate(targets)]
        )
    )
    return builder.freeze()


def build_dense_dag(num_nodes: int, density: float, seed: int = 0) -> ComputationalDAG:
    """Dense random DAG (upper-triangular Erdős–Rényi) for the coarsener.

    Constant density means O(n^2) edges and large descendant sets — the
    regime where the per-contraction DFS probe goes superlinear while the
    Pearce–Kelly order only touches the position strip between endpoints.
    """
    rng = np.random.default_rng(seed)
    builder = DagBuilder(name=f"dense_{num_nodes}")
    builder.add_nodes_array(
        rng.integers(1, 6, size=num_nodes).astype(np.float64),
        rng.integers(1, 4, size=num_nodes).astype(np.float64),
    )
    mask = np.triu(rng.random((num_nodes, num_nodes)) < density, k=1)
    srcs, tgts = np.nonzero(mask)
    builder.add_edges_array(*csr.dedupe_edges(num_nodes, srcs, tgts))
    return builder.freeze()


# ---------------------------------------------------------------------- #
# section 1: threaded initialiser fan-out
# ---------------------------------------------------------------------- #
class _ThreeInitialiserPipeline(SchedulingPipeline):
    """Pipeline variant with three comparable-cost heuristic initialisers.

    The registry heuristics pipeline fans out two initialisers; ``ILPinit``
    (the paper's third) is orders of magnitude slower than its siblings
    even on tiny instances, so a timing benchmark over it would only ever
    measure the ILP.  Three heuristics of similar per-chain cost exercise
    the fan-out the way the paper's three-initialiser portfolio does.
    """

    def _initializers(self, machine: BspMachine) -> list[Scheduler]:
        return [
            create_scheduler("bsp_greedy"),
            create_scheduler("bl_est"),
            create_scheduler("clustering"),
        ]


def _fanout_config(workers: int) -> PipelineConfig:
    # every nondeterministic knob pinned: no wall-clock budgets, no ILP --
    # the two widths must produce byte-identical output
    return PipelineConfig(
        use_ilp=False,
        use_comm_ilp=False,
        local_search_seconds=None,
        hc_max_passes=1,
        hc_max_steps=100,
        hccs_max_passes=1,
        init_workers=workers,
    )


def bench_init_fanout() -> dict:
    """Serial vs threaded initialiser fan-out with identical-output asserts."""
    dag = build_layered_dag(FANOUT_NODES)
    machine = BspMachine.uniform(FANOUT_PROCS, g=2, latency=5)
    cases = (
        ("heuristics", SchedulingPipeline),
        ("three_initialisers", _ThreeInitialiserPipeline),
    )
    entries = []
    for label, pipeline_cls in cases:
        runs = {}
        for workers in (1, FANOUT_WORKERS):
            pipeline = pipeline_cls(_fanout_config(workers))
            start = time.perf_counter()
            result = pipeline.schedule_with_stages(dag, machine)
            elapsed = time.perf_counter() - start
            runs[workers] = (result, elapsed)
        serial, serial_s = runs[1]
        threaded, threaded_s = runs[FANOUT_WORKERS]
        # differential: the fan-out must be wall-clock-only
        assert serial.stages.to_dict() == threaded.stages.to_dict(), label
        assert np.array_equal(serial.schedule.procs, threaded.schedule.procs)
        assert np.array_equal(serial.schedule.supersteps, threaded.schedule.supersteps)
        pipeline = pipeline_cls(_fanout_config(1))
        entries.append(
            {
                "case": label,
                "num_nodes": dag.num_nodes,
                "num_edges": dag.num_edges,
                "num_procs": FANOUT_PROCS,
                "initialisers": [s.name for s in pipeline._initializers(machine)],
                "workers": FANOUT_WORKERS,
                "cpu_count": os.cpu_count(),
                "final_cost": serial.schedule.cost(),
                "serial_s": serial_s,
                "threaded_s": threaded_s,
                "speedup": serial_s / threaded_s,
            }
        )
    return {"cases": entries}


# ---------------------------------------------------------------------- #
# section 2: batched HCcs pass fronts
# ---------------------------------------------------------------------- #
def bench_hccs_fronts() -> dict:
    """Batched pass fronts vs the pinned serial walk, move-for-move."""
    entries = []
    for num_nodes, num_layers in FRONT_CASES:
        dag = build_shuffled_pipeline_dag(num_nodes, num_layers)
        schedule = _level_schedule(dag, FRONT_PROCS, g=2)

        front_improver = CommScheduleHillClimbing(record_moves=True)
        start = time.perf_counter()
        front_result = front_improver.improve(schedule)
        front_time = time.perf_counter() - start

        # a finite max_steps cap pins the exact serial window walk (fronts
        # cannot replicate a mid-pass stop, so the kernel never batches)
        serial_improver = CommScheduleHillClimbing(record_moves=True)
        start = time.perf_counter()
        serial_result = serial_improver.improve(
            schedule, Budget(seconds=None, max_steps=10**9)
        )
        serial_time = time.perf_counter() - start

        assert serial_improver.last_moves == front_improver.last_moves, (
            "front accepted-move sequences diverge from the serial walk"
        )
        assert serial_result.comm_schedule == front_result.comm_schedule
        entries.append(
            {
                "num_nodes": dag.num_nodes,
                "num_edges": dag.num_edges,
                "num_layers": num_layers,
                "num_procs": FRONT_PROCS,
                "accepted_moves": len(front_improver.last_moves),
                "final_cost": front_result.cost(),
                "serial_s": serial_time,
                "fronts_s": front_time,
                "speedup": serial_time / front_time,
            }
        )
    return {"cases": entries}


# ---------------------------------------------------------------------- #
# section 3: Pearce-Kelly coarsening growth
# ---------------------------------------------------------------------- #
def bench_pk_coarsening() -> dict:
    """Exact-DFS vs Pearce-Kelly contraction checks on dense DAGs."""
    entries = []
    for num_nodes, density in PK_CASES:
        dag = build_dense_dag(num_nodes, density, seed=1)
        target = max(num_nodes // 10, 8)

        start = time.perf_counter()
        dfs_seq = coarsen_dag(dag, target, method="dfs")
        dfs_time = time.perf_counter() - start

        start = time.perf_counter()
        pk_seq = coarsen_dag(dag, target, method="pk")
        pk_time = time.perf_counter() - start

        # differential: identical contraction decisions, step for step
        assert [(r.kept, r.removed) for r in dfs_seq.records] == [
            (r.kept, r.removed) for r in pk_seq.records
        ], "PK contraction sequence diverges from the DFS reference"
        entries.append(
            {
                "num_nodes": num_nodes,
                "num_edges": dag.num_edges,
                "density": density,
                "num_contractions": len(pk_seq.records),
                "dfs_s": dfs_time,
                "pk_s": pk_time,
                "speedup": dfs_time / pk_time,
            }
        )
    # growth factor across the size doubling: PK must flatten the curve
    growth = {
        "size_ratio": PK_CASES[-1][0] / PK_CASES[0][0],
        "dfs_growth": entries[-1]["dfs_s"] / entries[0]["dfs_s"],
        "pk_growth": entries[-1]["pk_s"] / entries[0]["pk_s"],
    }
    return {"cases": entries, "growth": growth}


_report_cache: dict | None = None


def run_benchmarks() -> dict:
    warmup_seconds = kernels.warmup()
    report = {
        "kernel_backend": kernels.get_backend(),
        "jit_warmup_seconds": warmup_seconds,
        "init_fanout": bench_init_fanout(),
        "hccs_fronts": bench_hccs_fronts(),
        "pk_coarsening": bench_pk_coarsening(),
    }
    save_json("bench_pipeline_latency", report)
    save_bench_root(BENCH_PR_NUMBER, {"pipeline_latency": report})
    print(
        f"\nkernel backend: {report['kernel_backend']}"
        + (f" (JIT warmup {warmup_seconds:.2f} s)" if warmup_seconds else "")
    )
    print(
        f"\ninitialiser fan-out (n={FANOUT_NODES}, P={FANOUT_PROCS}, "
        f"{FANOUT_WORKERS} workers, {os.cpu_count()} CPU(s)):"
    )
    for case in report["init_fanout"]["cases"]:
        print(
            f"  {case['case']:18s} [{', '.join(case['initialisers'])}] "
            f"serial {case['serial_s'] * 1e3:8.1f} ms   "
            f"threaded {case['threaded_s'] * 1e3:8.1f} ms   "
            f"speedup {case['speedup']:5.2f}x"
        )
    print(f"\nHCcs pass fronts (P={FRONT_PROCS}):")
    for case in report["hccs_fronts"]["cases"]:
        print(
            f"  n={case['num_nodes']:6d} layers={case['num_layers']:5d} "
            f"moves={case['accepted_moves']:5d} "
            f"serial {case['serial_s'] * 1e3:8.1f} ms   "
            f"fronts {case['fronts_s'] * 1e3:8.1f} ms   "
            f"speedup {case['speedup']:5.2f}x"
        )
    section = report["pk_coarsening"]
    print("\nPearce-Kelly coarsening (dense DAGs):")
    for case in section["cases"]:
        print(
            f"  n={case['num_nodes']:5d} edges={case['num_edges']:6d} "
            f"dfs {case['dfs_s'] * 1e3:8.1f} ms   "
            f"pk {case['pk_s'] * 1e3:8.1f} ms   "
            f"speedup {case['speedup']:5.2f}x"
        )
    growth = section["growth"]
    print(
        f"  growth over {growth['size_ratio']:.0f}x size: "
        f"dfs {growth['dfs_growth']:.1f}x vs pk {growth['pk_growth']:.1f}x"
    )
    return report


# ---------------------------------------------------------------------- #
# pytest entry points
# ---------------------------------------------------------------------- #
def _cached_report() -> dict:
    global _report_cache
    if _report_cache is None:
        _report_cache = run_benchmarks()
    return _report_cache


def test_init_fanout_meets_floor():
    """Threaded fan-out must meet the floor (multi-core hosts only)."""
    import pytest

    if (os.cpu_count() or 1) < 2:
        pytest.skip("thread fan-out cannot win on a single-CPU host")
    report = _cached_report()
    for case in report["init_fanout"]["cases"]:
        assert case["speedup"] >= FANOUT_ACCEPTANCE_SPEEDUP, (
            f"init fan-out speedup {case['speedup']:.2f}x below the "
            f"{FANOUT_ACCEPTANCE_SPEEDUP}x floor ({case['case']})"
        )


def test_init_fanout_output_identical():
    """The identical-output asserts inside the section must have run."""
    report = _cached_report()
    assert report["init_fanout"]["cases"], "fan-out section produced no cases"


def test_hccs_fronts_meet_floor():
    """Batched fronts must beat the serial walk on the front-friendly shape."""
    report = _cached_report()
    for case in report["hccs_fronts"]["cases"]:
        assert case["speedup"] >= FRONT_ACCEPTANCE_SPEEDUP, (
            f"HCcs front speedup {case['speedup']:.2f}x below the "
            f"{FRONT_ACCEPTANCE_SPEEDUP}x floor at {case['num_nodes']} nodes"
        )


def test_pk_coarsening_meets_floor():
    """PK must beat the exact DFS and flatten the growth curve."""
    report = _cached_report()
    largest = report["pk_coarsening"]["cases"][-1]
    assert largest["speedup"] >= PK_ACCEPTANCE_SPEEDUP, (
        f"PK coarsening speedup {largest['speedup']:.2f}x below the "
        f"{PK_ACCEPTANCE_SPEEDUP}x floor at {largest['num_nodes']} nodes"
    )
    growth = report["pk_coarsening"]["growth"]
    assert growth["pk_growth"] <= growth["dfs_growth"] * PK_GROWTH_FRACTION, (
        f"PK growth {growth['pk_growth']:.1f}x exceeds "
        f"{PK_GROWTH_FRACTION} of the DFS growth {growth['dfs_growth']:.1f}x"
    )


if __name__ == "__main__":
    run_benchmarks()
