"""Benchmark target for Figure 6: stage-wise ratios with NUMA, including the ML column.

Regenerates the six panels of Figure 6 (one per ``P × Δ`` combination) from
the shared NUMA records, and times a multilevel run on a representative
instance.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, figure6_series
from repro.schedulers import MultilevelPipeline


def test_fig06_numa_stages(benchmark, numa_records, bench_config, representative_instance):
    machine = MachineSpec(8, g=1, latency=5, numa_delta=4).build()
    benchmark.pedantic(
        lambda: MultilevelPipeline(bench_config).schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    series, text = figure6_series(numa_records)
    save_table("fig06_numa_stages", text)

    assert series, "expected at least one P x delta panel"
    for panel, values in series.items():
        assert values["Cilk"] == 1.0
        assert values["ILP"] <= values["Init"] + 1e-9, panel
        assert "ML" in values, panel
    # the ML column becomes competitive with the base framework at the
    # steepest hierarchy (the defining observation of §7.3)
    steep = [key for key in series if key.endswith("D=4")]
    assert any(series[key]["ML"] <= series[key]["ILP"] * 1.3 for key in steep)
