"""Benchmark target for Table 1: cost reduction vs Cilk and HDagg without NUMA.

Regenerates both halves of Table 1 (improvement split by ``g × P`` and by
``g × dataset``) from the shared Section-7.1 grid, and times one framework
pipeline run on a representative instance.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, aggregate_improvement, table1_no_numa_improvements
from repro.schedulers import SchedulingPipeline


def test_table01_no_numa(benchmark, no_numa_records, bench_config, representative_instance):
    machine = MachineSpec(8, g=3, latency=5).build()
    benchmark.pedantic(
        lambda: SchedulingPipeline(bench_config).schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    rows, text = table1_no_numa_improvements(no_numa_records)
    save_table("table01_no_numa", text)

    # qualitative shape of the paper's Table 1: the framework is cheaper than
    # Cilk on average, and no worse than HDagg
    assert aggregate_improvement(no_numa_records, "final", "cilk") > 0.0
    assert aggregate_improvement(no_numa_records, "final", "hdagg") > -0.05
    # the gap to Cilk widens (or at least does not shrink much) as g grows
    low_g = [r for r in no_numa_records if r.spec.g == 1]
    high_g = [r for r in no_numa_records if r.spec.g == 5]
    assert aggregate_improvement(high_g, "final", "cilk") >= (
        aggregate_improvement(low_g, "final", "cilk") - 0.05
    )
