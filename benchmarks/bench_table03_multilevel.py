"""Benchmark target for Table 3: multilevel-scheduler cost reduction with NUMA.

Regenerates the ``P × Δ`` improvement grid of the multilevel scheduler from
the shared NUMA records and times the coarsening phase in isolation.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import aggregate_improvement, table3_multilevel_improvements
from repro.schedulers.multilevel import coarsen_dag


def test_table03_multilevel(benchmark, numa_records, representative_instance):
    dag = representative_instance.dag
    benchmark.pedantic(
        lambda: coarsen_dag(dag, target_nodes=max(2, dag.num_nodes // 3)),
        rounds=1,
        iterations=1,
    )

    rows, text = table3_multilevel_improvements(numa_records)
    save_table("table03_multilevel", text)

    ml_records = [r for r in numa_records if "multilevel" in r.costs]
    assert ml_records, "NUMA records must include the multilevel column"
    # the multilevel scheduler clearly beats Cilk in the NUMA regime
    assert aggregate_improvement(ml_records, "multilevel", "cilk") > 0.0
    # and at the steepest hierarchy it is at least competitive with the base scheduler
    steep = [r for r in ml_records if r.spec.numa_delta == 4]
    if steep:
        assert aggregate_improvement(steep, "multilevel", "final") > -0.3
