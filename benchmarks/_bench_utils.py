"""Helpers shared by the benchmark modules (table/JSON persistence, output directory)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under ``benchmarks/results/``."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def save_json(name: str, payload: Any) -> Path:
    """Persist a JSON-serialisable payload under ``benchmarks/results/``.

    Used by the kernel micro-benchmarks so that successive PRs can track the
    performance trajectory (the files are stable, machine-readable records
    of timings and speedups).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def save_bench_root(pr_number: int, benchmarks: dict) -> Path:
    """Write the per-PR benchmark record ``BENCH_<n>.json`` at the repo root.

    The schema is stable across PRs so the performance trajectory can be
    diffed mechanically::

        {"schema_version": 1, "pr": <n>, "benchmarks": {<name>: <payload>}}

    Repeated calls within one run merge into the same file (one benchmark
    module per key), so partial reruns do not drop older sections.
    """
    path = Path(__file__).parent.parent / f"BENCH_{pr_number}.json"
    record: dict = {"schema_version": 1, "pr": pr_number, "benchmarks": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if existing.get("schema_version") == 1 and existing.get("pr") == pr_number:
                record = existing
        except (ValueError, OSError):
            pass  # unreadable record: rewrite from scratch
    record.setdefault("benchmarks", {}).update(benchmarks)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
