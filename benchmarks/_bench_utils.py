"""Helpers shared by the benchmark modules (table persistence, output directory)."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under ``benchmarks/results/``."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
