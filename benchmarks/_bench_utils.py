"""Helpers shared by the benchmark modules (table/JSON persistence, output directory)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    """Print a rendered table and persist it under ``benchmarks/results/``."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def save_json(name: str, payload: Any) -> Path:
    """Persist a JSON-serialisable payload under ``benchmarks/results/``.

    Used by the kernel micro-benchmarks so that successive PRs can track the
    performance trajectory (the files are stable, machine-readable records
    of timings and speedups).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
