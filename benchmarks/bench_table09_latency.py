"""Benchmark target for Table 9: the effect of the latency parameter ``ℓ``.

Sweeps ``ℓ ∈ {2, 5, 10, 20}`` at ``g = 1`` and ``P = 8`` (Appendix C.3) and
reports the improvement over Cilk and HDagg for every latency value.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, table9_latency
from repro.schedulers import SourceScheduler


def test_table09_latency(benchmark, latency_records, representative_instance):
    machine = MachineSpec(8, g=1, latency=20).build()
    benchmark.pedantic(
        lambda: SourceScheduler().schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    values, text = table9_latency(latency_records)
    save_table("table09_latency", text)

    assert set(values) == {2, 5, 10, 20}
    # improvement over Cilk is positive throughout and tends to grow with l
    assert all(vs_cilk > 0 for vs_cilk, _ in values.values())
    assert values[20][0] >= values[2][0] - 0.05
