"""Micro-benchmarks: CSR DAG kernels vs. the seed list-of-lists implementations.

Measures ``levels``, ``bottom_levels``, full-neighbourhood iteration, BSP
schedule validation (``schedule_violations``) and classical-to-BSP superstep
numbering on layered random DAGs of 10k and 100k nodes, dataset *generation*
(the block-emitting fine-grained builders vs the retained per-nonzero seed
generator, at 10k / 100k / 1M-nonzero iterated-SpMV instances, with
differential asserts on the produced DAGs), plus the scaling of multilevel
coarsening on growing chain bundles:

* **seed** — the pure-Python reference implementations in
  :mod:`repro.core.reference` (and the retained rescan-and-sort coarsener
  :func:`~repro.schedulers.multilevel.coarsen_dag_reference`), which mirror
  the pre-CSR container (list-of-lists adjacency, per-node Python loops,
  per-step full edge rescans);
* **csr** — the vectorized passes behind the CSR-backed
  :class:`~repro.core.dag.ComputationalDAG` and the bucketed lazy priority
  structure of :func:`~repro.schedulers.multilevel.coarsen_dag`.

The kernel, validation and conversion comparisons are differential: the two
sides must produce identical results before their timings are recorded.
The coarsening comparison checks progress and acyclicity only — the bucket
queue deliberately refines the seed's tie-breaking and fallback order, so
record-level equality is not expected there.

Results (timings plus speedups) are printed and persisted as JSON under
``benchmarks/results/bench_dag_kernels.json`` via
:func:`_bench_utils.save_json`, and mirrored into the stable per-PR record
``BENCH_<n>.json`` at the repo root via :func:`_bench_utils.save_bench_root`,
so future PRs can track the trajectory mechanically.

Run directly (``PYTHONPATH=src python benchmarks/bench_dag_kernels.py``)
or through pytest (``pytest benchmarks/bench_dag_kernels.py``); the pytest
entry points also assert the >= 5x acceptance threshold on the 100k DAG and
the near-linear coarsening scaling.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for direct execution
from _bench_utils import save_bench_root, save_json

from repro.core import BspMachine, ComputationalDAG, DagBuilder, lazy_comm_schedule
from repro.core import csr
from repro.core import reference as ref
from repro.core.classical import conversion_supersteps
from repro.core.validation import schedule_violations
from repro.dagdb import SparseMatrixPattern, build_iterated_spmv_dag
from repro.dagdb.reference import build_iterated_spmv_dag_reference
from repro.schedulers.multilevel import coarsen_dag, coarsen_dag_reference

SIZES = (10_000, 100_000)
ACCEPTANCE_SIZE = 100_000
# >= 5x is the acceptance target on a quiet machine; shared CI runners can
# override the floor (REPRO_BENCH_MIN_SPEEDUP) so load spikes don't gate PRs
ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))
BENCH_PROCS = 8
COARSEN_SIZES = (500, 1_000, 2_000, 4_000)
# the seed coarsener re-sorts all edges per contraction (quadratic-ish in n);
# the bucket queue must grow at least this factor slower across COARSEN_SIZES
COARSEN_SCALING_FACTOR = float(os.environ.get("REPRO_BENCH_COARSEN_FACTOR", "2.0"))
#: generation cases: (matrix size, density, iterations) for iterated SpMV at
#: roughly 10k / 100k / 1M pattern nonzeros
GENERATION_CASES = ((200, 0.25, 2), (632, 0.25, 2), (2000, 0.25, 2))
GENERATION_ACCEPTANCE_NNZ = 900_000
# the block-emitting builders must beat the seed per-nonzero generator by
# >= 10x on the ~1M-nonzero instance (CI floor overridable like the others)
GENERATION_ACCEPTANCE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_GEN_SPEEDUP", "10.0")
)
#: stacked-PR sequence number of the stable BENCH_<n>.json record
BENCH_PR_NUMBER = int(os.environ.get("REPRO_BENCH_PR", "6"))


# ---------------------------------------------------------------------- #
# instance generation
# ---------------------------------------------------------------------- #
def build_layered_dag(
    num_nodes: int, num_layers: int = 64, out_degree: int = 3, seed: int = 0
) -> ComputationalDAG:
    """Random layered DAG: every node gets ``out_degree`` targets in the next layer."""
    rng = np.random.default_rng(seed)
    layer_of = np.sort(rng.integers(0, num_layers, size=num_nodes))
    builder = DagBuilder(name=f"layered_{num_nodes}")
    builder.add_nodes_array(
        rng.integers(1, 6, size=num_nodes).astype(np.float64),
        rng.integers(1, 4, size=num_nodes).astype(np.float64),
    )
    starts = np.searchsorted(layer_of, np.arange(num_layers + 1))
    for layer in range(num_layers - 1):
        src_lo, src_hi = int(starts[layer]), int(starts[layer + 1])
        dst_lo, dst_hi = int(starts[layer + 1]), int(starts[layer + 2])
        if src_hi == src_lo or dst_hi == dst_lo:
            continue
        sources = np.repeat(np.arange(src_lo, src_hi), out_degree)
        targets = rng.integers(dst_lo, dst_hi, size=sources.size)
        builder.add_edges_array(*csr.dedupe_edges(num_nodes, sources, targets))
    return builder.freeze()


# ---------------------------------------------------------------------- #
# timing helpers
# ---------------------------------------------------------------------- #
def _best_of(callable_, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_one_size(num_nodes: int) -> dict:
    dag = build_layered_dag(num_nodes)
    succ, pred = ref.adjacency_from_edges(
        dag.num_nodes, list(zip(*[a.tolist() for a in dag.edge_arrays()]))
    )
    work = dag.work_weights.tolist()

    # both sides run on pre-built adjacency: the seed side owned its lists,
    # the CSR side builds its arrays once per DAG (timed separately below)
    build_time, _ = _best_of(lambda: dag.copy().succ_indptr)
    succ_indptr, succ_indices = dag.succ_indptr, dag.succ_indices
    pred_indptr = dag.pred_indptr
    work_arr = dag.work_weights

    timings: dict[str, dict[str, float]] = {}

    # --- levels -------------------------------------------------------- #
    seed_time, seed_levels = _best_of(lambda: ref.levels_ref(succ, pred))
    csr_time, csr_levels_result = _best_of(
        lambda: csr.topological_levels(num_nodes, succ_indptr, succ_indices, pred_indptr)
    )
    assert csr_levels_result.tolist() == seed_levels, "levels kernels disagree"
    timings["levels"] = {"seed_s": seed_time, "csr_s": csr_time, "speedup": seed_time / csr_time}

    # --- bottom levels -------------------------------------------------- #
    levels = csr_levels_result
    seed_time, seed_bl = _best_of(lambda: ref.bottom_levels_ref(succ, pred, work))
    csr_time, csr_bl = _best_of(
        lambda: csr.bottom_levels_csr(levels, succ_indptr, succ_indices, work_arr)
    )
    assert csr_bl.tolist() == seed_bl, "bottom-level kernels disagree"
    timings["bottom_levels"] = {"seed_s": seed_time, "csr_s": csr_time, "speedup": seed_time / csr_time}

    # --- neighbourhood iteration ---------------------------------------- #
    # seed: copying accessor semantics (fresh list per visited node)
    def seed_neighbourhood_sweep():
        total = 0
        for v in range(len(succ)):
            total += len(list(succ[v]))
        return total

    # csr: one vectorized pass over the flat successor array
    def csr_neighbourhood_sweep():
        return int(np.diff(dag.succ_indptr).sum())

    seed_time, seed_total = _best_of(seed_neighbourhood_sweep)
    csr_time, csr_total = _best_of(csr_neighbourhood_sweep)
    assert seed_total == csr_total == dag.num_edges
    timings["neighbourhood_sweep"] = {
        "seed_s": seed_time,
        "csr_s": csr_time,
        "speedup": seed_time / csr_time,
    }

    # --- schedule validation -------------------------------------------- #
    # a valid level-synchronous schedule: supersteps = levels, round-robin
    # processors, lazy communication schedule
    machine = BspMachine.uniform(BENCH_PROCS, g=1, latency=1)
    procs = np.arange(num_nodes, dtype=np.int64) % BENCH_PROCS
    supersteps = levels.astype(np.int64)
    comm_steps = sorted(lazy_comm_schedule(dag, procs, supersteps))
    edges_list = list(zip(*[a.tolist() for a in dag.edge_arrays()]))
    seed_time, seed_violations = _best_of(
        lambda: ref.schedule_violations_ref(
            num_nodes, BENCH_PROCS, edges_list, procs, supersteps, comm_steps
        ),
        repeats=2,
    )
    csr_time, csr_violations = _best_of(
        lambda: schedule_violations(dag, machine, procs, supersteps, comm_steps),
        repeats=2,
    )
    assert seed_violations == csr_violations == [], "validation paths disagree"
    timings["schedule_violations"] = {
        "seed_s": seed_time,
        "csr_s": csr_time,
        "speedup": seed_time / csr_time,
        "num_comm_steps": len(comm_steps),
    }

    # --- classical -> BSP superstep numbering --------------------------- #
    start_times = levels.astype(np.float64)
    procs_list = procs.tolist()
    start_list = start_times.tolist()
    seed_time, seed_steps = _best_of(
        lambda: ref.classical_to_bsp_ref(pred, procs_list, start_list), repeats=2
    )
    csr_time, csr_steps = _best_of(
        lambda: conversion_supersteps(dag, procs, start_times), repeats=2
    )
    assert csr_steps.tolist() == seed_steps, "conversion paths disagree"
    timings["classical_to_bsp"] = {
        "seed_s": seed_time,
        "csr_s": csr_time,
        "speedup": seed_time / csr_time,
    }

    return {
        "num_nodes": dag.num_nodes,
        "num_edges": dag.num_edges,
        "depth": dag.depth(),
        "csr_build_s": build_time,
        "kernels": timings,
    }


def bench_generation() -> dict:
    """Seed per-nonzero generator vs CSR block emission, with differential asserts.

    The timed CSR side is the dataset-generation path (``track_roles=False``
    — :mod:`repro.dagdb.datasets` never uses role labels); a separate
    untimed build with roles is compared against the seed result node by
    node, edge row by edge row, so the speedup is only recorded for DAGs
    proven identical.
    """
    entries = []
    for size, density, iterations in GENERATION_CASES:
        pattern = SparseMatrixPattern.random(size, density, seed=0, ensure_diagonal=True)
        seed_repeats = 1 if pattern.nnz > 200_000 else 2
        seed_time, seed_result = _best_of(
            lambda: build_iterated_spmv_dag_reference(pattern, iterations),
            repeats=seed_repeats,
        )
        csr_time, csr_dag = _best_of(
            lambda: build_iterated_spmv_dag(
                pattern, iterations, track_roles=False
            ).dag,
            repeats=3,
        )
        # differential: the with-roles build must match the seed exactly
        checked = build_iterated_spmv_dag(pattern, iterations)
        assert checked.roles == seed_result.roles, "generation roles disagree"
        for mine, theirs in (
            (checked.dag, seed_result.dag),
            (csr_dag, seed_result.dag),
        ):
            assert mine.num_nodes == theirs.num_nodes
            assert np.array_equal(mine.succ_indptr, theirs.succ_indptr)
            assert np.array_equal(mine.succ_indices, theirs.succ_indices)
            assert np.array_equal(mine.work_weights, theirs.work_weights)
            assert np.array_equal(mine.comm_weights, theirs.comm_weights)
        entries.append(
            {
                "matrix_size": size,
                "density": density,
                "iterations": iterations,
                "nnz": pattern.nnz,
                "num_nodes": csr_dag.num_nodes,
                "num_edges": csr_dag.num_edges,
                "seed_s": seed_time,
                "csr_s": csr_time,
                "speedup": seed_time / csr_time,
            }
        )
    return {"cases": entries}


def build_chain_bundle(num_nodes: int, num_chains: int = 64, seed: int = 0) -> ComputationalDAG:
    """A bundle of parallel chains with random integer weights (strided layout).

    Every node has at most one predecessor and one successor, so every edge
    is trivially contractable and the coarsening timings isolate the cost of
    the *selection* structure (the seed's per-step full rescan-and-sort vs
    the bucketed lazy priority queue).
    """
    rng = np.random.default_rng(seed)
    builder = DagBuilder(name=f"chains_{num_nodes}")
    builder.add_nodes_array(
        rng.integers(1, 6, size=num_nodes).astype(np.float64),
        rng.integers(1, 4, size=num_nodes).astype(np.float64),
    )
    sources = np.arange(num_nodes - num_chains, dtype=np.int64)
    builder.add_edges_array(sources, sources + num_chains)
    return builder.freeze()


def bench_coarsening() -> dict:
    """Coarsening wall time of seed vs bucket queue over growing instances."""
    entries = []
    for num_nodes in COARSEN_SIZES:
        dag = build_chain_bundle(num_nodes)
        target = num_nodes // 2
        seed_time, seed_seq = _best_of(
            lambda: coarsen_dag_reference(dag, target_nodes=target), repeats=1
        )
        csr_time, csr_seq = _best_of(
            lambda: coarsen_dag(dag, target_nodes=target), repeats=1
        )
        assert seed_seq.num_contractions == csr_seq.num_contractions
        assert csr_seq.quotient().dag.is_acyclic()
        entries.append(
            {
                "num_nodes": num_nodes,
                "num_contractions": csr_seq.num_contractions,
                "seed_s": seed_time,
                "bucket_s": csr_time,
                "speedup": seed_time / csr_time,
            }
        )
    smallest, largest = entries[0], entries[-1]
    return {
        "sizes": entries,
        # how much each implementation slowed down from the smallest to the
        # largest instance; near-linear code grows ~ with the size factor
        "seed_growth": largest["seed_s"] / smallest["seed_s"],
        "bucket_growth": largest["bucket_s"] / smallest["bucket_s"],
    }


_report_cache: dict | None = None


def run_benchmarks() -> dict:
    report = {
        "sizes": [bench_one_size(n) for n in SIZES],
        "generation": bench_generation(),
        "coarsening": bench_coarsening(),
    }
    save_json("bench_dag_kernels", report)
    save_bench_root(BENCH_PR_NUMBER, {"dag_kernels": report})
    for entry in report["sizes"]:
        print(f"\nn={entry['num_nodes']} m={entry['num_edges']} depth={entry['depth']}")
        for kernel, t in entry["kernels"].items():
            print(
                f"  {kernel:20s} seed {t['seed_s'] * 1e3:9.2f} ms   "
                f"csr {t['csr_s'] * 1e3:8.2f} ms   speedup {t['speedup']:7.1f}x"
            )
    print("\ngeneration (iterated SpMV, seed per-nonzero vs CSR block emission):")
    for case in report["generation"]["cases"]:
        print(
            f"  nnz={case['nnz']:8d} nodes={case['num_nodes']:8d} "
            f"seed {case['seed_s'] * 1e3:9.2f} ms   "
            f"csr {case['csr_s'] * 1e3:8.2f} ms   speedup {case['speedup']:7.1f}x"
        )
    coarsening = report["coarsening"]
    print("\ncoarsening (chain bundles, target = n/2):")
    for entry in coarsening["sizes"]:
        print(
            f"  n={entry['num_nodes']:6d} seed {entry['seed_s'] * 1e3:9.2f} ms   "
            f"bucket {entry['bucket_s'] * 1e3:8.2f} ms   speedup {entry['speedup']:7.1f}x"
        )
    print(
        f"  growth smallest->largest: seed {coarsening['seed_growth']:.1f}x, "
        f"bucket {coarsening['bucket_growth']:.1f}x"
    )
    return report


# ---------------------------------------------------------------------- #
# pytest entry points
# ---------------------------------------------------------------------- #
def _cached_report() -> dict:
    """Run the benchmark suite once per pytest session (two asserting tests)."""
    global _report_cache
    if _report_cache is None:
        _report_cache = run_benchmarks()
    return _report_cache


def test_csr_kernels_meet_acceptance_speedup():
    """The vectorized passes must beat the seed paths >= 5x at 100k nodes."""
    report = _cached_report()
    big = next(e for e in report["sizes"] if e["num_nodes"] == ACCEPTANCE_SIZE)
    for kernel in ("levels", "bottom_levels", "schedule_violations"):
        speedup = big["kernels"][kernel]["speedup"]
        assert speedup >= ACCEPTANCE_SPEEDUP, (
            f"{kernel} speedup {speedup:.1f}x below the {ACCEPTANCE_SPEEDUP}x target"
        )
    coarsening = report["coarsening"]
    # the seed coarsener grows super-linearly (per-step O(m log m) rescans),
    # the bucket queue near-linearly: its slowdown across an 8x size sweep
    # must stay well below the seed's
    assert (
        coarsening["seed_growth"]
        >= COARSEN_SCALING_FACTOR * coarsening["bucket_growth"]
    ), (
        f"coarsening scaling: seed grew {coarsening['seed_growth']:.1f}x but the "
        f"bucket queue grew {coarsening['bucket_growth']:.1f}x across "
        f"{COARSEN_SIZES[0]}->{COARSEN_SIZES[-1]} nodes"
    )


def test_generation_block_emission_speedup():
    """Block emission must beat the seed generator >= 10x at ~1M nonzeros."""
    report = _cached_report()
    big = next(
        c
        for c in report["generation"]["cases"]
        if c["nnz"] >= GENERATION_ACCEPTANCE_NNZ
    )
    assert big["speedup"] >= GENERATION_ACCEPTANCE_SPEEDUP, (
        f"generation speedup {big['speedup']:.1f}x below the "
        f"{GENERATION_ACCEPTANCE_SPEEDUP}x target at {big['nnz']} nonzeros"
    )


if __name__ == "__main__":
    run_benchmarks()
