"""Micro-benchmarks: CSR DAG kernels vs. the seed list-of-lists implementations.

Measures ``levels``, ``bottom_levels`` and full-neighbourhood iteration on
layered random DAGs of 10k and 100k nodes:

* **seed** — the pure-Python reference kernels in
  :mod:`repro.core.reference`, which mirror the pre-CSR container
  (list-of-lists adjacency, per-node Python loops, copying accessors);
* **csr** — the vectorized kernels behind the CSR-backed
  :class:`~repro.core.dag.ComputationalDAG`.

Results (timings plus speedups) are printed and persisted as JSON under
``benchmarks/results/bench_dag_kernels.json`` via
:func:`_bench_utils.save_json`, so future PRs can track the trajectory.

Run directly (``PYTHONPATH=src python benchmarks/bench_dag_kernels.py``)
or through pytest (``pytest benchmarks/bench_dag_kernels.py``); the pytest
entry point also asserts the >= 5x acceptance threshold on the 100k DAG.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for direct execution
from _bench_utils import save_json

from repro.core import ComputationalDAG, DagBuilder
from repro.core import csr
from repro.core import reference as ref

SIZES = (10_000, 100_000)
ACCEPTANCE_SIZE = 100_000
# >= 5x is the acceptance target on a quiet machine; shared CI runners can
# override the floor (REPRO_BENCH_MIN_SPEEDUP) so load spikes don't gate PRs
ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))


# ---------------------------------------------------------------------- #
# instance generation
# ---------------------------------------------------------------------- #
def build_layered_dag(
    num_nodes: int, num_layers: int = 64, out_degree: int = 3, seed: int = 0
) -> ComputationalDAG:
    """Random layered DAG: every node gets ``out_degree`` targets in the next layer."""
    rng = np.random.default_rng(seed)
    layer_of = np.sort(rng.integers(0, num_layers, size=num_nodes))
    builder = DagBuilder(name=f"layered_{num_nodes}")
    builder.add_nodes_array(
        rng.integers(1, 6, size=num_nodes).astype(np.float64),
        rng.integers(1, 4, size=num_nodes).astype(np.float64),
    )
    starts = np.searchsorted(layer_of, np.arange(num_layers + 1))
    for layer in range(num_layers - 1):
        src_lo, src_hi = int(starts[layer]), int(starts[layer + 1])
        dst_lo, dst_hi = int(starts[layer + 1]), int(starts[layer + 2])
        if src_hi == src_lo or dst_hi == dst_lo:
            continue
        sources = np.repeat(np.arange(src_lo, src_hi), out_degree)
        targets = rng.integers(dst_lo, dst_hi, size=sources.size)
        builder.add_edges_array(*csr.dedupe_edges(num_nodes, sources, targets))
    return builder.freeze()


# ---------------------------------------------------------------------- #
# timing helpers
# ---------------------------------------------------------------------- #
def _best_of(callable_, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_one_size(num_nodes: int) -> dict:
    dag = build_layered_dag(num_nodes)
    succ, pred = ref.adjacency_from_edges(
        dag.num_nodes, list(zip(*[a.tolist() for a in dag.edge_arrays()]))
    )
    work = dag.work_weights.tolist()

    # both sides run on pre-built adjacency: the seed side owned its lists,
    # the CSR side builds its arrays once per DAG (timed separately below)
    build_time, _ = _best_of(lambda: dag.copy().succ_indptr)
    succ_indptr, succ_indices = dag.succ_indptr, dag.succ_indices
    pred_indptr = dag.pred_indptr
    work_arr = dag.work_weights

    timings: dict[str, dict[str, float]] = {}

    # --- levels -------------------------------------------------------- #
    seed_time, seed_levels = _best_of(lambda: ref.levels_ref(succ, pred))
    csr_time, csr_levels_result = _best_of(
        lambda: csr.topological_levels(num_nodes, succ_indptr, succ_indices, pred_indptr)
    )
    assert csr_levels_result.tolist() == seed_levels, "levels kernels disagree"
    timings["levels"] = {"seed_s": seed_time, "csr_s": csr_time, "speedup": seed_time / csr_time}

    # --- bottom levels -------------------------------------------------- #
    levels = csr_levels_result
    seed_time, seed_bl = _best_of(lambda: ref.bottom_levels_ref(succ, pred, work))
    csr_time, csr_bl = _best_of(
        lambda: csr.bottom_levels_csr(levels, succ_indptr, succ_indices, work_arr)
    )
    assert csr_bl.tolist() == seed_bl, "bottom-level kernels disagree"
    timings["bottom_levels"] = {"seed_s": seed_time, "csr_s": csr_time, "speedup": seed_time / csr_time}

    # --- neighbourhood iteration ---------------------------------------- #
    # seed: copying accessor semantics (fresh list per visited node)
    def seed_neighbourhood_sweep():
        total = 0
        for v in range(len(succ)):
            total += len(list(succ[v]))
        return total

    # csr: one vectorized pass over the flat successor array
    def csr_neighbourhood_sweep():
        return int(np.diff(dag.succ_indptr).sum())

    seed_time, seed_total = _best_of(seed_neighbourhood_sweep)
    csr_time, csr_total = _best_of(csr_neighbourhood_sweep)
    assert seed_total == csr_total == dag.num_edges
    timings["neighbourhood_sweep"] = {
        "seed_s": seed_time,
        "csr_s": csr_time,
        "speedup": seed_time / csr_time,
    }

    return {
        "num_nodes": dag.num_nodes,
        "num_edges": dag.num_edges,
        "depth": dag.depth(),
        "csr_build_s": build_time,
        "kernels": timings,
    }


def run_benchmarks() -> dict:
    report = {"sizes": [bench_one_size(n) for n in SIZES]}
    save_json("bench_dag_kernels", report)
    for entry in report["sizes"]:
        print(f"\nn={entry['num_nodes']} m={entry['num_edges']} depth={entry['depth']}")
        for kernel, t in entry["kernels"].items():
            print(
                f"  {kernel:20s} seed {t['seed_s'] * 1e3:9.2f} ms   "
                f"csr {t['csr_s'] * 1e3:8.2f} ms   speedup {t['speedup']:7.1f}x"
            )
    return report


# ---------------------------------------------------------------------- #
# pytest entry point
# ---------------------------------------------------------------------- #
def test_csr_kernels_meet_acceptance_speedup():
    """levels/bottom_levels must be >= 5x faster than the seed path at 100k nodes."""
    report = run_benchmarks()
    big = next(e for e in report["sizes"] if e["num_nodes"] == ACCEPTANCE_SIZE)
    for kernel in ("levels", "bottom_levels"):
        speedup = big["kernels"][kernel]["speedup"]
        assert speedup >= ACCEPTANCE_SPEEDUP, (
            f"{kernel} speedup {speedup:.1f}x below the {ACCEPTANCE_SPEEDUP}x target"
        )


if __name__ == "__main__":
    run_benchmarks()
