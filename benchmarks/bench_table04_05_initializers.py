"""Benchmark target for Tables 4 and 5: which initialiser wins on the training set.

Counts, for every machine point of the training grid, which of BSPg, Source
and ILPinit produced the cheapest initial schedule — split by spmv vs the
iterative generators and by instance size, as in Appendix C.1.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, table4_5_initializer_wins
from repro.schedulers import BspGreedyScheduler, SourceScheduler


def test_table04_05_initializer_wins(benchmark, initializer_wins, representative_instance):
    machine = MachineSpec(8, g=3, latency=5).build()

    def run_both_fast_initializers():
        BspGreedyScheduler().schedule(representative_instance.dag, machine)
        SourceScheduler().schedule(representative_instance.dag, machine)

    benchmark.pedantic(run_both_fast_initializers, rounds=1, iterations=1)

    rows, text = table4_5_initializer_wins(initializer_wins)
    save_table("table04_05_initializers", text)

    winners = {win.winner for win in initializer_wins}
    # every run picked a real initialiser and the bookkeeping is consistent
    assert winners <= {"bsp_greedy", "source", "ilp_init"}
    assert all(win.costs[win.winner] == min(win.costs.values()) for win in initializer_wins)
    # the paper's observation that no single initialiser dominates everywhere:
    # at least two different initialisers win at least once
    assert len(winners) >= 2
