"""Benchmark target for Table 8: cost reduction vs ETF on the smallest dataset.

The paper singles out ETF because it is the strongest baseline on the tiny
dataset; this bench regenerates the ``g × P`` improvement grid against ETF
and times the ETF baseline itself.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, table8_vs_etf
from repro.schedulers import EtfScheduler


def test_table08_vs_etf(benchmark, no_numa_records, representative_instance):
    machine = MachineSpec(4, g=3, latency=5).build()
    benchmark.pedantic(
        lambda: EtfScheduler().schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    smallest_dataset = min(
        {record.dataset for record in no_numa_records},
        key=lambda name: min(r.num_nodes for r in no_numa_records if r.dataset == name),
    )
    values, text = table8_vs_etf(no_numa_records, dataset=smallest_dataset)
    save_table("table08_vs_etf", text)

    assert values, "expected at least one (P, g) cell"
    # the framework is consistently no worse than ETF on the small instances
    assert all(improvement > -0.05 for improvement in values.values())
    # and strictly better somewhere
    assert any(improvement > 0.0 for improvement in values.values())
