"""Benchmark target for Tables 11/12 and Figure 7: the huge dataset, non-ILP pipeline.

The paper runs only the cheap part of the framework (BSPg/Source + HC + HCcs)
on the largest DAGs.  This bench regenerates the improvement tables with and
without NUMA plus the per-``P`` stage ratios of Figure 7, and times the
heuristics-only pipeline on a representative instance.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import (
    MachineSpec,
    aggregate_improvement,
    figure7_series,
    table11_12_huge,
)
from repro.schedulers import SchedulingPipeline


def test_table11_huge_uniform(benchmark, huge_records_uniform, representative_instance):
    machine = MachineSpec(16, g=3, latency=5).build()
    pipeline = SchedulingPipeline.heuristics_only(local_search_seconds=0.5)
    benchmark.pedantic(
        lambda: pipeline.schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    rows, text = table11_12_huge(huge_records_uniform)
    save_table("table11_huge_uniform", text)
    assert aggregate_improvement(huge_records_uniform, "final", "cilk") > 0.0

    series, fig_text = figure7_series(huge_records_uniform)
    save_table("fig07_huge_stage_ratios", fig_text)
    for panel, values in series.items():
        assert values["Cilk"] == 1.0
        assert values["HCcs"] <= values["Init"] + 1e-9, panel


def test_table12_huge_numa(benchmark, huge_records_numa, representative_instance):
    machine = MachineSpec(8, g=1, latency=5, numa_delta=4).build()
    pipeline = SchedulingPipeline.heuristics_only(local_search_seconds=0.5)
    benchmark.pedantic(
        lambda: pipeline.schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    rows, text = table11_12_huge(huge_records_numa)
    save_table("table12_huge_numa", text)
    # with NUMA the gains of the heuristic pipeline over Cilk remain positive
    assert aggregate_improvement(huge_records_numa, "final", "cilk") > 0.0
    # and they are at least as large as without NUMA on the steepest hierarchy
    steep = [r for r in huge_records_numa if r.spec.numa_delta == 4]
    mild = [r for r in huge_records_numa if r.spec.numa_delta == 2]
    if steep and mild:
        assert aggregate_improvement(steep, "final", "cilk") >= (
            aggregate_improvement(mild, "final", "cilk") - 0.05
        )
