"""Benchmark target for Figure 5: stage-wise cost ratios (normalised to Cilk) per ``g``.

Regenerates the bar values of Figure 5 — the mean cost ratio of Cilk, HDagg,
the best initialisation, the local-search result and the ILP result — from
the shared Section-7.1 grid, and times the local-search stage in isolation.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, figure5_series
from repro.schedulers import BspGreedyScheduler, HillClimbingImprover


def test_fig05_stage_breakdown(benchmark, no_numa_records, representative_instance):
    machine = MachineSpec(8, g=5, latency=5).build()
    initial = BspGreedyScheduler().schedule(representative_instance.dag, machine)
    benchmark.pedantic(
        lambda: HillClimbingImprover(max_passes=5).improve(initial),
        rounds=1,
        iterations=1,
    )

    series, text = figure5_series(no_numa_records)
    save_table("fig05_stage_breakdown", text)

    for panel, values in series.items():
        # Cilk is the normalisation baseline
        assert values["Cilk"] == 1.0
        # the paper's bar ordering: each framework stage improves on the last
        assert values["Init"] <= 1.0 + 1e-9, panel
        assert values["HCcs"] <= values["Init"] + 1e-9, panel
        assert values["ILP"] <= values["HCcs"] + 1e-9, panel
