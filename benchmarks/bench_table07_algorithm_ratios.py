"""Benchmark target for Table 7: per-algorithm cost ratios at ``g = 5``.

Regenerates the BL-EST / ETF / Cilk / HDagg / Init / HCcs / ILP ratio table
(normalised to Cilk) per dataset from the shared Section-7.1 records, and
times the BL-EST and ETF list schedulers.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, table7_algorithm_ratios
from repro.schedulers import BlEstScheduler, EtfScheduler


def test_table07_algorithm_ratios(benchmark, no_numa_records, representative_instance):
    machine = MachineSpec(8, g=5, latency=5).build()

    def run_list_schedulers():
        BlEstScheduler().schedule(representative_instance.dag, machine)
        EtfScheduler().schedule(representative_instance.dag, machine)

    benchmark.pedantic(run_list_schedulers, rounds=1, iterations=1)

    series, text = table7_algorithm_ratios(no_numa_records, g=5)
    save_table("table07_algorithm_ratios", text)

    assert series, "expected at least one dataset row"
    for dataset, values in series.items():
        assert values["Cilk"] == 1.0
        # the framework's final result beats HDagg-normalised-to-Cilk on this grid
        assert values["ILPcs"] <= values["HDagg"] + 0.05, dataset
        # list baselines are present thanks to include_list_baselines
        assert "ETF" in values and "BL-EST" in values, dataset
