"""Micro-benchmarks: batched HC / HCcs refiners vs. the retained seed walkers.

Measures the end-to-end hill-climbing refinement (``HC``) and the
communication-schedule local search (``HCcs``) on layered random DAGs:

* **seed** — the retained probe-and-rollback walkers in
  :mod:`repro.schedulers.reference`, which pay two full ``apply_move`` calls
  per rejected candidate (HC) and a copy-mutate-restore row pass per
  candidate phase (HCcs);
* **vectorized** — the batched read-only neighbourhood evaluation of
  :class:`repro.schedulers.hill_climbing.HillClimbingImprover` and the
  row-maxima candidate evaluation of
  :class:`repro.schedulers.comm_hill_climbing.CommScheduleHillClimbing`.

Every comparison is **differential**: the two sides must produce identical
accepted-move sequences and identical final schedules before their timings
are recorded (``record_moves=True`` on both improvers).  The HC runs bound
the number of accepted moves (``max_steps``) exactly like the multilevel
refinement bursts do, so the reference finishes in benchmark-friendly time;
both sides stop after the same move by construction.

Results are printed, persisted under ``benchmarks/results/`` and mirrored
into the stable per-PR record ``BENCH_<n>.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_hc_refinement.py``)
or through pytest; the pytest entry point asserts the >= 5x acceptance
threshold on the 100k-node / 8-processor HC configuration.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for direct execution
from _bench_utils import save_bench_root, save_json
from bench_dag_kernels import BENCH_PR_NUMBER, build_layered_dag

from repro.api import MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService
from repro.core import BspMachine, BspSchedule, ComputationalDAG, DagBuilder
from repro.core import csr, kernels
from repro.core.csr import topological_levels
from repro.schedulers.comm_hill_climbing import CommScheduleHillClimbing
from repro.schedulers.hill_climbing import HillClimbingImprover
from repro.schedulers.reference import (
    CommScheduleHillClimbingReference,
    HillClimbingImproverReference,
)

#: (num_nodes, max accepted moves) per HC benchmark case; the largest case
#: carries the acceptance assertion
HC_CASES = ((10_000, 200), (100_000, 300))
HC_ACCEPTANCE_NODES = 100_000
BENCH_PROCS = 8
# >= 5x is the acceptance target on a quiet machine; shared CI runners can
# override the floor (REPRO_BENCH_MIN_HC_SPEEDUP) so load spikes don't gate PRs
HC_ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_HC_SPEEDUP", "5.0"))
#: never-slower floor for HCcs (quiet machine: 1.0; CI lowers it for noise)
HCCS_ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_HCCS_SPEEDUP", "1.0"))
#: (num_nodes, passes) for the HCcs comparison (skip-level edges give the
#: transfers non-trivial feasible windows)
HCCS_CASES = ((30_000, 1),)
#: shared-DAG batch shape for the thread-vs-process ``solve_many`` section
SOLVE_MANY_REQUESTS = 32
SOLVE_MANY_NODES = int(os.environ.get("REPRO_BENCH_BATCH_NODES", "100000"))
SOLVE_MANY_WORKERS = int(os.environ.get("REPRO_BENCH_BATCH_WORKERS", "4"))
#: thread executor must beat the process executor on the shared-DAG batch
#: (>= 1.0 on a quiet machine; CI can lower the floor for runner noise)
THREAD_ACCEPTANCE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_THREAD_SPEEDUP", "1.0")
)


def _level_schedule(dag: ComputationalDAG, procs: int, g: float) -> BspSchedule:
    """Valid level-synchronous schedule: supersteps = levels, round-robin procs."""
    machine = BspMachine.uniform(procs, g=g, latency=5)
    levels = topological_levels(
        dag.num_nodes, dag.succ_indptr, dag.succ_indices, dag.pred_indptr
    )
    assignment = np.arange(dag.num_nodes, dtype=np.int64) % procs
    return BspSchedule(
        dag, machine, assignment, levels.astype(np.int64), validate=False
    )


def build_skip_layered_dag(
    num_nodes: int, num_layers: int = 48, out_degree: int = 2, seed: int = 0
) -> ComputationalDAG:
    """Layered DAG whose edges also skip two layers ahead.

    Values crossing processors are then needed several supersteps after they
    are produced, so their communication windows have width > 1 — the case
    ``HCcs`` actually optimises.
    """
    rng = np.random.default_rng(seed)
    layer_of = np.sort(rng.integers(0, num_layers, size=num_nodes))
    builder = DagBuilder(name=f"skip_layered_{num_nodes}")
    builder.add_nodes_array(
        rng.integers(1, 6, size=num_nodes).astype(np.float64),
        rng.integers(1, 4, size=num_nodes).astype(np.float64),
    )
    starts = np.searchsorted(layer_of, np.arange(num_layers + 1))
    for layer in range(num_layers - 1):
        src_lo, src_hi = int(starts[layer]), int(starts[layer + 1])
        if src_hi == src_lo:
            continue
        for gap in (1, 3):
            dst_layer = layer + gap
            if dst_layer >= num_layers:
                continue
            dst_lo, dst_hi = int(starts[dst_layer]), int(starts[dst_layer + 1])
            if dst_hi == dst_lo:
                continue
            sources = np.repeat(np.arange(src_lo, src_hi), out_degree)
            targets = rng.integers(dst_lo, dst_hi, size=sources.size)
            builder.add_edges_array(*csr.dedupe_edges(num_nodes, sources, targets))
    return builder.freeze()


def bench_hc() -> dict:
    """Seed vs batched HC with the differential accepted-move assert."""
    entries = []
    for num_nodes, max_steps in HC_CASES:
        dag = build_layered_dag(num_nodes)
        schedule = _level_schedule(dag, BENCH_PROCS, g=5)
        seed_improver = HillClimbingImproverReference(
            max_passes=1, max_steps=max_steps, record_moves=True
        )
        start = time.perf_counter()
        seed_result = seed_improver.improve(schedule)
        seed_time = time.perf_counter() - start

        vec_improver = HillClimbingImprover(
            max_passes=1, max_steps=max_steps, record_moves=True
        )
        start = time.perf_counter()
        vec_result = vec_improver.improve(schedule)
        vec_time = time.perf_counter() - start

        # differential: identical accepted-move sequences and final (π, τ)
        assert seed_improver.last_moves == vec_improver.last_moves, (
            "HC accepted-move sequences diverge"
        )
        assert np.array_equal(seed_result.procs, vec_result.procs)
        assert np.array_equal(seed_result.supersteps, vec_result.supersteps)
        entries.append(
            {
                "num_nodes": num_nodes,
                "num_edges": dag.num_edges,
                "num_procs": BENCH_PROCS,
                "max_steps": max_steps,
                "accepted_moves": len(vec_improver.last_moves),
                "final_cost": vec_result.cost(),
                "seed_s": seed_time,
                "vectorized_s": vec_time,
                "speedup": seed_time / vec_time,
            }
        )
    return {"cases": entries}


def bench_hccs() -> dict:
    """Seed vs vectorized HCcs with the differential accepted-move assert."""
    entries = []
    for num_nodes, passes in HCCS_CASES:
        dag = build_skip_layered_dag(num_nodes)
        schedule = _level_schedule(dag, BENCH_PROCS, g=2)
        seed_improver = CommScheduleHillClimbingReference(
            max_passes=passes, record_moves=True
        )
        start = time.perf_counter()
        seed_result = seed_improver.improve(schedule)
        seed_time = time.perf_counter() - start

        vec_improver = CommScheduleHillClimbing(max_passes=passes, record_moves=True)
        start = time.perf_counter()
        vec_result = vec_improver.improve(schedule)
        vec_time = time.perf_counter() - start

        assert seed_improver.last_moves == vec_improver.last_moves, (
            "HCcs accepted-move sequences diverge"
        )
        assert seed_result.comm_schedule == vec_result.comm_schedule
        entries.append(
            {
                "num_nodes": num_nodes,
                "num_edges": dag.num_edges,
                "num_procs": BENCH_PROCS,
                "passes": passes,
                "accepted_moves": len(vec_improver.last_moves),
                "final_cost": vec_result.cost(),
                "seed_s": seed_time,
                "vectorized_s": vec_time,
                "speedup": seed_time / vec_time,
            }
        )
    return {"cases": entries}


def bench_solve_many() -> dict:
    """Thread vs process executor on a batch sharing one in-memory DAG.

    The 32 requests differ only in their seed, so the process pool ships the
    same large DAG across the worker pipe once per request (plus the eagerly
    serialised results on the way back) while the thread pool ships nothing.
    The scheduler itself is cheap by design — the section measures the
    fan-out overhead, which is exactly what ``executor="thread"`` removes.
    """
    dag = build_layered_dag(SOLVE_MANY_NODES)
    machine = MachineSpec(num_procs=BENCH_PROCS, g=2, latency=5)
    requests = [
        ScheduleRequest(
            dag=dag, machine=machine, scheduler=SchedulerSpec("cilk"), seed=seed
        )
        for seed in range(SOLVE_MANY_REQUESTS)
    ]
    timings: dict[str, float] = {}
    costs: dict[str, list[float]] = {}
    for executor in ("process", "thread"):
        service = SchedulingService(cache_size=0)
        start = time.perf_counter()
        batch = service.solve_many(
            requests, workers=SOLVE_MANY_WORKERS, executor=executor
        )
        timings[executor] = time.perf_counter() - start
        costs[executor] = [result.cost for result in batch]
    # differential: both executor flavours must solve the batch identically
    assert costs["process"] == costs["thread"], "executor flavours disagree"
    return {
        "num_requests": SOLVE_MANY_REQUESTS,
        "num_nodes": dag.num_nodes,
        "num_edges": dag.num_edges,
        "num_procs": BENCH_PROCS,
        "workers": SOLVE_MANY_WORKERS,
        "process_s": timings["process"],
        "thread_s": timings["thread"],
        "speedup": timings["process"] / timings["thread"],
    }


_report_cache: dict | None = None


def run_benchmarks() -> dict:
    # force any JIT compilation before the timed regions; the compile time
    # is machine/cache-dependent, so it is recorded as volatile metadata
    # only and never enters a speedup
    warmup_seconds = kernels.warmup()
    report = {
        "kernel_backend": kernels.get_backend(),
        "jit_warmup_seconds": warmup_seconds,
        "hc": bench_hc(),
        "hccs": bench_hccs(),
        "solve_many": bench_solve_many(),
    }
    save_json("bench_hc_refinement", report)
    save_bench_root(BENCH_PR_NUMBER, {"hc_refinement": report})
    print(
        f"\nkernel backend: {report['kernel_backend']}"
        + (f" (JIT warmup {warmup_seconds:.2f} s)" if warmup_seconds else "")
    )
    for label, section in (("HC", report["hc"]), ("HCcs", report["hccs"])):
        print(f"\n{label} (seed walker vs batched evaluation, P={BENCH_PROCS}):")
        for case in section["cases"]:
            print(
                f"  n={case['num_nodes']:7d} moves={case['accepted_moves']:5d} "
                f"seed {case['seed_s'] * 1e3:9.1f} ms   "
                f"vectorized {case['vectorized_s'] * 1e3:8.1f} ms   "
                f"speedup {case['speedup']:6.1f}x"
            )
    batch = report["solve_many"]
    print(
        f"\nsolve_many shared-DAG batch ({batch['num_requests']} requests, "
        f"n={batch['num_nodes']}, {batch['workers']} workers):\n"
        f"  process {batch['process_s'] * 1e3:9.1f} ms   "
        f"thread {batch['thread_s'] * 1e3:8.1f} ms   "
        f"speedup {batch['speedup']:6.1f}x"
    )
    return report


# ---------------------------------------------------------------------- #
# pytest entry points
# ---------------------------------------------------------------------- #
def _cached_report() -> dict:
    global _report_cache
    if _report_cache is None:
        _report_cache = run_benchmarks()
    return _report_cache


def test_hc_refinement_meets_acceptance_speedup():
    """Batched HC must beat the seed walker >= 5x at 100k nodes / 8 procs."""
    report = _cached_report()
    big = next(
        c for c in report["hc"]["cases"] if c["num_nodes"] == HC_ACCEPTANCE_NODES
    )
    assert big["speedup"] >= HC_ACCEPTANCE_SPEEDUP, (
        f"HC refinement speedup {big['speedup']:.1f}x below the "
        f"{HC_ACCEPTANCE_SPEEDUP}x target at {HC_ACCEPTANCE_NODES} nodes"
    )


def test_hccs_never_slower_than_seed():
    """The vectorized HCcs must at least match the seed walker."""
    report = _cached_report()
    for case in report["hccs"]["cases"]:
        assert case["speedup"] >= HCCS_ACCEPTANCE_SPEEDUP, (
            f"HCcs speedup {case['speedup']:.2f}x below the "
            f"{HCCS_ACCEPTANCE_SPEEDUP}x floor at {case['num_nodes']} nodes"
        )


def test_thread_executor_beats_process_on_shared_dag_batch():
    """``solve_many(executor="thread")`` must win the zero-pickle batch."""
    report = _cached_report()
    batch = report["solve_many"]
    assert batch["speedup"] >= THREAD_ACCEPTANCE_SPEEDUP, (
        f"thread executor speedup {batch['speedup']:.2f}x below the "
        f"{THREAD_ACCEPTANCE_SPEEDUP}x floor on the "
        f"{batch['num_requests']}-request shared-DAG batch"
    )


if __name__ == "__main__":
    run_benchmarks()
