"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has its own ``bench_*`` module, but many
of them aggregate the *same* underlying experiment grid (e.g. Tables 1 and 6
and Figure 5 all read the no-NUMA grid of Section 7.1).  The grids are
therefore computed once per pytest session by the session-scoped fixtures
below and shared across the bench modules; each bench module additionally
times a representative scheduling run with ``pytest-benchmark`` and prints
the regenerated table/figure rows.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    ``bench`` (default, laptop-scale instance sizes) or ``paper`` (the
    original node-count intervals — expect hours).
``REPRO_BENCH_MAX_INSTANCES``
    Maximum number of instances per dataset (default 2 at bench scale,
    unlimited at paper scale).
``REPRO_BENCH_DATASETS``
    Comma-separated dataset list for the main grids (default ``tiny,small``).

Rendered tables are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

from _bench_utils import save_table  # noqa: F401  (re-exported for bench modules)
from repro.analysis import (
    run_huge_experiment,
    run_initializer_comparison,
    run_latency_sweep,
    run_multilevel_ratio_experiment,
    run_no_numa_grid,
    run_numa_grid,
)
from repro.schedulers import PipelineConfig

def _bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


def _max_instances() -> int | None:
    raw = os.environ.get("REPRO_BENCH_MAX_INSTANCES")
    if raw:
        return int(raw)
    return 2 if _bench_scale() == "bench" else None


def _datasets() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_DATASETS", "tiny,small")
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def _config() -> PipelineConfig:
    return PipelineConfig.fast() if _bench_scale() == "bench" else PipelineConfig()


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return _bench_scale()


@pytest.fixture(scope="session")
def representative_instance():
    """One mid-sized instance used by the per-module timing measurements."""
    from repro.dagdb import build_dataset

    instances = build_dataset(_datasets()[0], scale=_bench_scale(), include_coarse=False)
    return instances[len(instances) // 2]


@pytest.fixture(scope="session")
def bench_config() -> PipelineConfig:
    return _config()


@pytest.fixture(scope="session")
def no_numa_records():
    """Section 7.1 grid (Tables 1, 6, 7, 8; Figure 5), incl. BL-EST/ETF."""
    return run_no_numa_grid(
        datasets=_datasets(),
        scale=_bench_scale(),
        procs=(4, 8),
        g_values=(1, 3, 5),
        config=_config(),
        include_list_baselines=True,
        max_instances_per_dataset=_max_instances(),
    )


@pytest.fixture(scope="session")
def numa_records():
    """Section 7.2 grid (Tables 2, 3, 10; Figure 6), incl. multilevel and trivial."""
    return run_numa_grid(
        datasets=_datasets(),
        scale=_bench_scale(),
        procs=(8, 16),
        deltas=(2, 3, 4),
        config=_config(),
        include_multilevel=True,
        include_trivial=True,
        max_instances_per_dataset=_max_instances(),
    )


@pytest.fixture(scope="session")
def latency_records():
    """Appendix C.3 latency sweep (Table 9)."""
    return run_latency_sweep(
        dataset="small" if "small" in _datasets() else _datasets()[0],
        scale=_bench_scale(),
        latencies=(2, 5, 10, 20),
        config=_config(),
        max_instances=_max_instances(),
    )


@pytest.fixture(scope="session")
def initializer_wins():
    """Appendix C.1 initialiser comparison (Tables 4 and 5)."""
    return run_initializer_comparison(
        scale=_bench_scale(),
        procs=(4, 8),
        g_values=(1, 3),
        ilp_init_time=1.0 if _bench_scale() == "bench" else 10.0,
    )


@pytest.fixture(scope="session")
def huge_records_uniform():
    """Appendix C.5 huge dataset without NUMA (Table 11, Figure 7)."""
    return run_huge_experiment(
        scale=_bench_scale(),
        numa=False,
        procs=(4, 8, 16),
        g_values=(1, 3, 5),
        local_search_seconds=0.5 if _bench_scale() == "bench" else 30.0,
        max_instances=_max_instances(),
    )


@pytest.fixture(scope="session")
def huge_records_numa():
    """Appendix C.5 huge dataset with NUMA (Table 12)."""
    return run_huge_experiment(
        scale=_bench_scale(),
        numa=True,
        deltas=(2, 3, 4),
        local_search_seconds=0.5 if _bench_scale() == "bench" else 30.0,
        max_instances=_max_instances(),
    )


@pytest.fixture(scope="session")
def multilevel_ratio_records():
    """Section 7.3 coarsening-ratio experiment (Tables 13 and 14)."""
    return run_multilevel_ratio_experiment(
        datasets=tuple(d for d in _datasets() if d != "tiny") or ("small",),
        scale=_bench_scale(),
        procs=(8, 16),
        deltas=(2, 4),
        config=_config(),
        max_instances_per_dataset=min(_max_instances() or 2, 2),
    )
