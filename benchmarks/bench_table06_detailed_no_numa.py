"""Benchmark target for Table 6: detailed no-NUMA improvements per ``g × P × dataset``.

Regenerates the fully split-out improvement grid of Table 6 from the shared
Section-7.1 records and times the Cilk and HDagg baselines (the denominators
of every cell).
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, aggregate_improvement, table6_detailed_no_numa
from repro.schedulers import CilkScheduler, HDaggScheduler


def test_table06_detailed_no_numa(benchmark, no_numa_records, representative_instance):
    machine = MachineSpec(8, g=3, latency=5).build()

    def run_baselines():
        CilkScheduler(seed=0).schedule(representative_instance.dag, machine)
        HDaggScheduler().schedule(representative_instance.dag, machine)

    benchmark.pedantic(run_baselines, rounds=1, iterations=1)

    rows, text = table6_detailed_no_numa(no_numa_records)
    save_table("table06_detailed_no_numa", text)

    # every dataset in the grid gets a full row, and the overall improvement
    # over Cilk stays positive for every dataset (Table 6's headline shape)
    datasets = {record.dataset for record in no_numa_records}
    assert set(rows) == datasets
    for dataset in datasets:
        subset = [r for r in no_numa_records if r.dataset == dataset]
        assert aggregate_improvement(subset, "final", "cilk") > 0.0, dataset
