"""Benchmark target for Table 10: NUMA improvements per ``P × Δ × dataset``.

Regenerates the fully split-out NUMA improvement table from the shared
Section-7.2 records and times the lazy-communication cost evaluation that
every cell ultimately rests on.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, aggregate_improvement, table10_numa_detailed
from repro.schedulers import HDaggScheduler


def test_table10_numa_detailed(benchmark, numa_records, representative_instance):
    machine = MachineSpec(16, g=1, latency=5, numa_delta=4).build()
    schedule = HDaggScheduler().schedule(representative_instance.dag, machine)
    benchmark.pedantic(lambda: schedule.with_lazy_comm().cost(), rounds=1, iterations=1)

    rows, text = table10_numa_detailed(numa_records)
    save_table("table10_numa_detailed", text)

    datasets = {record.dataset for record in numa_records}
    assert set(rows) == datasets
    # positive improvement over Cilk for every dataset under NUMA
    for dataset in datasets:
        subset = [r for r in numa_records if r.dataset == dataset]
        assert aggregate_improvement(subset, "final", "cilk") > 0.0, dataset
