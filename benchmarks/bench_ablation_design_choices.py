"""Ablation benches for the design choices called out in DESIGN.md.

These are not paper tables; they quantify the framework's own design
decisions on a small instance set: the contribution of each local-search
component (including the simulated-annealing future-work variant), the BSPg
superstep-closing threshold, the communication-schedule policy (eager vs
lazy vs optimised), and the multilevel refinement interval.
"""

from __future__ import annotations

import pytest

from _bench_utils import save_table
from repro.analysis import (
    MachineSpec,
    bspg_idle_fraction_ablation,
    comm_schedule_policy_ablation,
    local_search_component_ablation,
    multilevel_refinement_ablation,
)
from repro.dagdb import build_dataset
from repro.schedulers import SimulatedAnnealingImprover, BspGreedyScheduler


@pytest.fixture(scope="module")
def ablation_instances():
    return build_dataset("tiny", scale="bench", include_coarse=False)[:4]


def test_ablation_local_search_components(benchmark, ablation_instances):
    machine = MachineSpec(4, g=3, latency=5).build()
    initial = BspGreedyScheduler().schedule(ablation_instances[0].dag, machine)
    benchmark.pedantic(
        lambda: SimulatedAnnealingImprover(sweeps=10).improve(initial),
        rounds=1,
        iterations=1,
    )
    ratios, text = local_search_component_ablation(ablation_instances, machine)
    save_table("ablation_local_search", text)
    # HC never hurts, HCcs never hurts on top of HC
    assert ratios["hc"] <= 1.0 + 1e-9
    assert ratios["hc+hccs"] <= ratios["hc"] + 1e-9
    assert ratios["annealing"] <= 1.0 + 1e-9


def test_ablation_bspg_idle_fraction(benchmark, ablation_instances):
    machine = MachineSpec(8, g=3, latency=5).build()
    benchmark.pedantic(
        lambda: bspg_idle_fraction_ablation(ablation_instances[:2], machine, fractions=(0.5,)),
        rounds=1,
        iterations=1,
    )
    ratios, text = bspg_idle_fraction_ablation(ablation_instances, machine)
    save_table("ablation_bspg_idle_fraction", text)
    assert ratios[0.5] == pytest.approx(1.0)
    # every threshold produces a finite, comparable schedule; the point of the
    # ablation is the reported spread, not a hard winner
    assert all(ratio > 0 for ratio in ratios.values())
    # the paper's choice of one half is never the outright worst option by a
    # large margin (more than 2x the best threshold tried)
    assert min(ratios.values()) >= 0.5


def test_ablation_comm_schedule_policy(benchmark, ablation_instances):
    machine = MachineSpec(4, g=5, latency=5).build()
    benchmark.pedantic(
        lambda: comm_schedule_policy_ablation(ablation_instances[:1], machine),
        rounds=1,
        iterations=1,
    )
    ratios, text = comm_schedule_policy_ablation(ablation_instances, machine)
    save_table("ablation_comm_schedule_policy", text)
    assert ratios["lazy"] == pytest.approx(1.0)
    # optimising the communication schedule never hurts relative to lazy
    assert ratios["hccs"] <= 1.0 + 1e-9
    assert ratios["ilpcs"] <= 1.0 + 1e-9


def test_ablation_multilevel_refinement_interval(benchmark, ablation_instances):
    machine = MachineSpec(8, g=1, latency=5, numa_delta=4).build()
    subset = ablation_instances[:2]
    result = benchmark.pedantic(
        lambda: multilevel_refinement_ablation(subset, machine, intervals=(1, 5, 20)),
        rounds=1,
        iterations=1,
    )
    ratios, text = result
    save_table("ablation_multilevel_refinement", text)
    assert ratios[5] == pytest.approx(1.0)
    # refining very rarely (interval 20) should not be dramatically better than
    # the paper's choice of 5 -- otherwise the refinement machinery is pointless
    assert ratios[20] >= 0.6
