"""Benchmark target for Table 2: base-scheduler cost reduction with NUMA effects.

Regenerates the ``P × Δ`` improvement grid of Table 2 from the shared
Section-7.2 records and times one framework run on a NUMA machine.
"""

from __future__ import annotations

from _bench_utils import save_table
from repro.analysis import MachineSpec, aggregate_improvement, table2_numa_improvements
from repro.schedulers import SchedulingPipeline


def test_table02_numa(benchmark, numa_records, bench_config, representative_instance):
    machine = MachineSpec(8, g=1, latency=5, numa_delta=3).build()
    benchmark.pedantic(
        lambda: SchedulingPipeline(bench_config).schedule(representative_instance.dag, machine),
        rounds=1,
        iterations=1,
    )

    rows, text = table2_numa_improvements(numa_records)
    save_table("table02_numa", text)

    # qualitative shape: positive improvement over Cilk, growing with delta
    assert aggregate_improvement(numa_records, "final", "cilk") > 0.0
    low = [r for r in numa_records if r.spec.numa_delta == 2]
    high = [r for r in numa_records if r.spec.numa_delta == 4]
    assert aggregate_improvement(high, "final", "cilk") >= (
        aggregate_improvement(low, "final", "cilk") - 0.05
    )
